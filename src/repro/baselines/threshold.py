"""Non-learned string-similarity baseline.

Not part of the paper's comparison table, but a useful sanity floor: any deep
matcher should beat a tuned Jaccard-similarity threshold.  Also used by the
test suite as a quick, deterministic reference point.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.baselines.base import BaselineMatcher, records_of
from repro.data.pairs import LabeledPair, PairSet
from repro.data.schema import ERTask, Record
from repro.eval.metrics import best_threshold
from repro.text.tokenize import tokenize


def jaccard(a: str, b: str) -> float:
    """Token-set Jaccard similarity of two strings."""
    tokens_a, tokens_b = set(tokenize(a)), set(tokenize(b))
    if not tokens_a and not tokens_b:
        return 0.0
    union = tokens_a | tokens_b
    return len(tokens_a & tokens_b) / len(union) if union else 0.0


def record_similarity(left: Record, right: Record) -> float:
    """Mean attribute-wise Jaccard similarity of two records."""
    similarities = [jaccard(a, b) for a, b in zip(left.values, right.values)]
    return float(np.mean(similarities)) if similarities else 0.0


class ThresholdMatcher(BaselineMatcher):
    """Classify pairs by thresholding mean attribute Jaccard similarity."""

    name = "jaccard-threshold"

    def fit(self, task: ERTask, training_pairs: PairSet, validation_pairs: Optional[PairSet] = None) -> "ThresholdMatcher":
        left, right, labels = records_of(task, training_pairs.pairs())
        scores = np.array([record_similarity(l, r) for l, r in zip(left, right)])
        self.threshold = best_threshold(labels.astype(int), scores, grid=np.linspace(0.05, 0.95, 37))
        self._fitted = True
        self.tune_threshold(task, validation_pairs)
        return self

    def predict_proba(self, task: ERTask, pairs: Iterable[LabeledPair]) -> np.ndarray:
        self._require_fitted()
        left, right, _ = records_of(task, pairs)
        return np.array([record_similarity(l, r) for l, r in zip(left, right)])
