"""DeepMatcher-style baseline (Mudgal et al., SIGMOD 2018), hybrid variant.

DeepMatcher structures matching as attribute summarisation followed by
attribute comparison and classification.  The miniature keeps that structure:
per-attribute token embeddings are summarised by a learned non-linear layer
(one shared summariser, applied to both tuples), compared through absolute
difference and element-wise product, and the concatenated attribute
comparison vectors feed a deep classifier.  Everything is trained jointly on
labeled pairs, which is the expensive, task-locked design VAER's decoupling
argues against.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor, concatenate
from repro.baselines.base import BaselineMatcher, records_of
from repro.data.pairs import LabeledPair, PairSet
from repro.data.schema import ERTask, Record
from repro.nn import Adam, Linear, MLP, Module, Trainer, binary_cross_entropy_with_logits
from repro.text.hash_embedding import HashEmbedding


class _HybridNetwork(Module):
    """Shared attribute summariser + comparison classifier."""

    def __init__(self, arity: int, embedding_dim: int, summary_dim: int, hidden_sizes: tuple, rng: np.random.Generator) -> None:
        super().__init__()
        self.arity = arity
        self.embedding_dim = embedding_dim
        self.summary_dim = summary_dim
        self.summarizer = Linear(embedding_dim, summary_dim, rng=rng)
        self.classifier = MLP(
            in_features=arity * 2 * summary_dim,
            hidden_sizes=hidden_sizes,
            out_features=1,
            rng=rng,
        )

    def forward(self, left: Tensor, right: Tensor) -> Tensor:
        """left/right: (batch, arity, embedding_dim) -> logits (batch,)."""
        batch = left.shape[0]
        left_summary = self.summarizer(left.reshape(batch * self.arity, self.embedding_dim)).relu()
        right_summary = self.summarizer(right.reshape(batch * self.arity, self.embedding_dim)).relu()
        difference = (left_summary - right_summary).abs()
        product = left_summary * right_summary
        comparison = concatenate([difference, product], axis=-1)
        features = comparison.reshape(batch, self.arity * 2 * self.summary_dim)
        return self.classifier(features).reshape(batch)


class DeepMatcherMatcher(BaselineMatcher):
    """Attribute summarise-and-compare network trained end to end."""

    name = "deepmatcher"

    def __init__(
        self,
        embedding_dim: int = 64,
        summary_dim: int = 96,
        hidden_sizes: tuple = (256, 128, 64),
        epochs: int = 80,
        batch_size: int = 32,
        learning_rate: float = 0.001,
        seed: int = 73,
    ) -> None:
        super().__init__()
        self.embedding_dim = embedding_dim
        self.summary_dim = summary_dim
        self.hidden_sizes = hidden_sizes
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self._embedder = HashEmbedding(dim=embedding_dim)
        self._network: Optional[_HybridNetwork] = None
        self._arity: Optional[int] = None

    # ------------------------------------------------------------------
    def _embed_records(self, records: List[Record]) -> np.ndarray:
        return np.stack([
            np.vstack([self._embedder.embed_sentence(value) for value in record.values])
            for record in records
        ])

    def _embed_pairs(self, task: ERTask, pairs: Iterable[LabeledPair]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        left, right, labels = records_of(task, pairs)
        if not left:
            arity = task.arity
            empty = np.zeros((0, arity, self.embedding_dim))
            return empty, empty, labels
        return self._embed_records(left), self._embed_records(right), labels

    # ------------------------------------------------------------------
    def fit(self, task: ERTask, training_pairs: PairSet, validation_pairs: Optional[PairSet] = None) -> "DeepMatcherMatcher":
        left, right, labels = self._embed_pairs(task, training_pairs.pairs())
        self._arity = task.arity
        rng = np.random.default_rng(self.seed)
        self._network = _HybridNetwork(task.arity, self.embedding_dim, self.summary_dim, self.hidden_sizes, rng)
        optimizer = Adam(self._network.parameters(), lr=self.learning_rate)

        def loss_fn(batch_left: np.ndarray, batch_right: np.ndarray, batch_y: np.ndarray):
            logits = self._network(Tensor(batch_left), Tensor(batch_right))
            return binary_cross_entropy_with_logits(logits, Tensor(batch_y))

        trainer = Trainer(
            module=self._network,
            optimizer=optimizer,
            loss_fn=loss_fn,
            batch_size=self.batch_size,
            max_epochs=self.epochs,
            rng=rng,
        )
        self.training_history = trainer.fit(left, right, labels)
        self._fitted = True
        self.tune_threshold(task, validation_pairs)
        return self

    def predict_proba(self, task: ERTask, pairs: Iterable[LabeledPair]) -> np.ndarray:
        self._require_fitted()
        assert self._network is not None
        left, right, _ = self._embed_pairs(task, pairs)
        if left.shape[0] == 0:
            return np.zeros(0)
        self._network.eval()
        logits = self._network(Tensor(left), Tensor(right))
        return 1.0 / (1.0 + np.exp(-np.clip(logits.data, -60, 60)))
