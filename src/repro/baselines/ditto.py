"""DITTO-style baseline (Li et al., PVLDB 2020).

DITTO serialises an entity pair into a single token sequence ("COL name VAL
value ... [SEP] COL name VAL value ...") and fine-tunes a pre-trained language
model on the pair-classification task.  Offline, the pre-trained transformer
is replaced by the repo's contextual hashing encoder (the BERT substitute used
for IRs), and "fine-tuning" becomes training a deep classifier over the
serialised-pair embedding together with the two single-side embeddings.  The
serialisation format, the pair-level sequence classification framing and the
per-task end-to-end training — the aspects the paper contrasts with VAER —
are preserved.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.baselines.base import BaselineMatcher, records_of
from repro.data.pairs import LabeledPair, PairSet
from repro.data.schema import ERTask, Record
from repro.nn import Adam, MLP, Trainer, binary_cross_entropy_with_logits
from repro.text.hash_embedding import ContextualHashEmbedding


def serialize_record(record: Record, attributes: Tuple[str, ...]) -> str:
    """DITTO's serialisation: ``COL <name> VAL <value>`` per attribute."""
    parts: List[str] = []
    for name, value in zip(attributes, record.values):
        parts.append(f"COL {name} VAL {value}")
    return " ".join(parts)


def serialize_pair(left: Record, right: Record, attributes: Tuple[str, ...]) -> str:
    """Serialisation of the full pair with a separator token."""
    return f"{serialize_record(left, attributes)} [SEP] {serialize_record(right, attributes)}"


class DittoMatcher(BaselineMatcher):
    """Serialized-pair sequence classification with a contextual encoder."""

    name = "ditto"

    def __init__(
        self,
        embedding_dim: int = 128,
        hidden_sizes: tuple = (256, 128),
        epochs: int = 80,
        batch_size: int = 32,
        learning_rate: float = 0.001,
        seed: int = 79,
    ) -> None:
        super().__init__()
        self.embedding_dim = embedding_dim
        self.hidden_sizes = hidden_sizes
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self._encoder = ContextualHashEmbedding(dim=embedding_dim)
        self._classifier: Optional[MLP] = None

    # ------------------------------------------------------------------
    def _pair_features(self, task: ERTask, left: List[Record], right: List[Record]) -> np.ndarray:
        """[pair embedding, |left - right|, left * right] per pair."""
        attributes = task.left.attributes
        features = []
        for l, r in zip(left, right):
            pair_vec = self._encoder.embed_sentence(serialize_pair(l, r, attributes))
            left_vec = self._encoder.embed_sentence(serialize_record(l, attributes))
            right_vec = self._encoder.embed_sentence(serialize_record(r, attributes))
            features.append(np.concatenate([pair_vec, np.abs(left_vec - right_vec), left_vec * right_vec]))
        return np.vstack(features) if features else np.zeros((0, 3 * self.embedding_dim))

    # ------------------------------------------------------------------
    def fit(self, task: ERTask, training_pairs: PairSet, validation_pairs: Optional[PairSet] = None) -> "DittoMatcher":
        left, right, labels = records_of(task, training_pairs.pairs())
        features = self._pair_features(task, left, right)
        rng = np.random.default_rng(self.seed)
        self._classifier = MLP(
            in_features=features.shape[1],
            hidden_sizes=self.hidden_sizes,
            out_features=1,
            rng=rng,
        )
        optimizer = Adam(self._classifier.parameters(), lr=self.learning_rate)

        def loss_fn(batch_x: np.ndarray, batch_y: np.ndarray):
            logits = self._classifier(Tensor(batch_x)).reshape(batch_x.shape[0])
            return binary_cross_entropy_with_logits(logits, Tensor(batch_y))

        trainer = Trainer(
            module=self._classifier,
            optimizer=optimizer,
            loss_fn=loss_fn,
            batch_size=self.batch_size,
            max_epochs=self.epochs,
            rng=rng,
        )
        self.training_history = trainer.fit(features, labels)
        self._fitted = True
        self.tune_threshold(task, validation_pairs)
        return self

    def predict_proba(self, task: ERTask, pairs: Iterable[LabeledPair]) -> np.ndarray:
        self._require_fitted()
        assert self._classifier is not None
        left, right, _ = records_of(task, pairs)
        if not left:
            return np.zeros(0)
        features = self._pair_features(task, left, right)
        logits = self._classifier(Tensor(features)).reshape(features.shape[0])
        return 1.0 / (1.0 + np.exp(-np.clip(logits.data, -60, 60)))
