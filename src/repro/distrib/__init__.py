"""Distributed multi-node resolution over the shared encoding cache.

A coordinator/worker execution layer that partitions the plan/execute
engine's stage units — LSH partial-bucket builds, query shards, score
batches, delta encode ranges — across N worker processes or hosts that
share only a cache directory (and, optionally, a TCP connection).  See
:mod:`repro.distrib.coordinator` for the execution model,
:mod:`repro.distrib.queue` for the two transports and
:mod:`repro.distrib.artifacts` for the content-addressed data plane.

Typical use::

    runtime = DistributedRuntime.file_queue("/shared/queue", workers=4)
    # start workers:  python -m repro worker --queue-dir /shared/queue
    for batch in model.resolve_distributed(runtime=runtime):
        ...
    runtime.close()

or, one-shot through the CLI::

    python -m repro resolve --domain beer --distributed 4 --queue-dir /shared/queue
"""

from repro.distrib.artifacts import (
    CacheRef,
    DistribStateSpec,
    blob_crc,
    dump_object,
    find_blob,
    load_object,
    read_blob,
    write_blob,
)
from repro.distrib.coordinator import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_RETRIES,
    Coordinator,
    DistributedPool,
    DistributedRuntime,
)
from repro.distrib.queue import (
    FileLeaseQueue,
    SocketQueueClient,
    SocketWorkQueue,
    WorkUnit,
)
from repro.distrib.worker import Worker, make_queue_client, run_worker

__all__ = [
    "CacheRef",
    "Coordinator",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_MAX_RETRIES",
    "DistribStateSpec",
    "DistributedPool",
    "DistributedRuntime",
    "FileLeaseQueue",
    "SocketQueueClient",
    "SocketWorkQueue",
    "WorkUnit",
    "Worker",
    "blob_crc",
    "dump_object",
    "find_blob",
    "load_object",
    "make_queue_client",
    "read_blob",
    "run_worker",
    "write_blob",
]
