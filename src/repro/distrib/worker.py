"""The worker loop: claim, heartbeat, execute, publish — repeat.

A worker is deliberately dumb and stateless.  It never sees a plan, a
model or a store up front: each claimed unit carries its function (by
reference) and arguments, and any stage state arrives lazily through the
:class:`~repro.distrib.artifacts.DistribStateSpec` riding the unit's
:class:`~repro.engine.shard.StateHandle` — resolved on first touch from
the shared state artifacts and, for cache-resident arrays, from the shared
:class:`~repro.engine.persist.PersistentEncodingCache` (codec-aware: int8
entries attach as :class:`~repro.engine.quant.CodecArray` code views
without rehydration).  That is what makes one worker process serve any
number of jobs, and what makes killing a worker mid-unit safe: its lease
simply expires and the unit runs elsewhere, producing byte-identical
results because the unit is a pure function of its payload and the shared
state.

While a unit runs, a sidecar thread touches the lease on
``heartbeat_interval``; a SIGKILL stops the heartbeats with the process,
which is exactly the liveness signal the coordinator's lease timeout
watches.  Unit-level exceptions are *reported* (an ``("err", message)``
result), not fatal to the worker — the coordinator decides between retry
and serial fallback.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Optional

from repro.distrib.artifacts import dump_object, load_object
from repro.distrib.queue import FileLeaseQueue, SocketQueueClient, WorkUnit

DEFAULT_POLL_INTERVAL = 0.05
DEFAULT_HEARTBEAT_INTERVAL = 1.0


class Worker:
    """Claim-execute loop over one queue client (file or socket)."""

    def __init__(
        self,
        queue,
        *,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        max_units: Optional[int] = None,
        idle_timeout: Optional[float] = None,
    ) -> None:
        self.queue = queue
        self.poll_interval = float(poll_interval)
        self.heartbeat_interval = float(heartbeat_interval)
        self.max_units = max_units
        self.idle_timeout = idle_timeout
        self.units_executed = 0
        self.units_failed = 0

    # ------------------------------------------------------------------
    def run(self, stop_event: Optional[threading.Event] = None) -> int:
        """Serve units until stopped; returns how many were executed.

        Stops on ``stop_event``, after ``max_units`` executions, or after
        ``idle_timeout`` seconds without claimable work (``None`` = serve
        forever — the daemon mode ``python -m repro worker`` runs in).
        """
        idle_since = time.monotonic()
        while stop_event is None or not stop_event.is_set():
            unit = self.queue.claim()
            if unit is None:
                if (
                    self.idle_timeout is not None
                    and time.monotonic() - idle_since > self.idle_timeout
                ):
                    break
                if stop_event is not None:
                    stop_event.wait(self.poll_interval)
                else:
                    time.sleep(self.poll_interval)
                continue
            idle_since = time.monotonic()
            self.execute(unit)
            if self.max_units is not None and self.units_executed >= self.max_units:
                break
        return self.units_executed

    def execute(self, unit: WorkUnit) -> None:
        """Run one claimed unit under a heartbeat and publish its result."""
        done = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(unit.unit_id, done), daemon=True
        )
        beat.start()
        try:
            try:
                fn, args, kwargs = load_object(unit.payload)
                value = fn(*args, **kwargs)
                result = dump_object(("ok", value))
            except BaseException as error:
                self.units_failed += 1
                detail = "".join(
                    traceback.format_exception_only(type(error), error)
                ).strip()
                result = dump_object(("err", detail))
        finally:
            done.set()
            beat.join(timeout=self.heartbeat_interval + 1.0)
        self.queue.complete(unit.unit_id, result)
        self.units_executed += 1

    def _heartbeat_loop(self, unit_id: str, done: threading.Event) -> None:
        while not done.wait(self.heartbeat_interval):
            if not self.queue.heartbeat(unit_id):
                # Lease revoked (the coordinator re-dispatched us as a
                # straggler).  Finishing anyway is harmless — results are
                # content-addressed, duplicates converge — so keep going
                # but stop touching the queue's lease state.
                return


def make_queue_client(
    queue_dir: Optional[str] = None, connect: Optional[str] = None
):
    """The worker-side queue handle for one of the two transports."""
    if (queue_dir is None) == (connect is None):
        raise ValueError("exactly one of queue_dir / connect is required")
    if queue_dir is not None:
        return FileLeaseQueue(queue_dir)
    host, _, port = connect.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"connect must look like host:port, got {connect!r}")
    return SocketQueueClient(host, int(port))


def run_worker(
    queue_dir: Optional[str] = None,
    connect: Optional[str] = None,
    *,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    max_units: Optional[int] = None,
    idle_timeout: Optional[float] = None,
) -> int:
    """Entry point behind ``python -m repro worker``."""
    worker = Worker(
        make_queue_client(queue_dir, connect),
        poll_interval=poll_interval,
        heartbeat_interval=heartbeat_interval,
        max_units=max_units,
        idle_timeout=idle_timeout,
    )
    return worker.run()
