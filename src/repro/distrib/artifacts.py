"""Content-addressed artifacts: the distributed runner's only data plane.

Every payload that crosses a process (or host) boundary in the distributed
runner — work-unit descriptions, published stage state, unit results — is
written as a *blob*: a single file whose name embeds the CRC-32 of its
bytes (``<name>-<crc32>.bin``), written to a temporary sibling and moved
into place with :func:`os.replace`.  The rules that fall out are the whole
correctness story of the transport:

* a blob is valid iff its content CRC matches its filename — a torn or
  truncated write (a worker killed mid-``write``), a half-synced network
  filesystem, or a corrupted disk block all surface as *missing*, never as
  wrong data;
* blobs are content-addressed, so writing the same payload twice (a
  re-dispatched unit completed by both the original and the replacement
  worker) lands on the same path with the same bytes — duplicate completion
  is idempotent by construction;
* readers never need locks: they see either no file or a complete one.

:class:`CacheRef` and :class:`DistribStateSpec` are the codec-aware bridge
to the shared :class:`~repro.engine.persist.PersistentEncodingCache`: a
published stage state whose big arrays are already resident in the shared
cache ships a tiny reference instead of the arrays, and the worker attaches
them through the cache's own loader — int8 entries come back as
:class:`~repro.engine.quant.CodecArray` code views, never rehydrated to
floats in transit.
"""

from __future__ import annotations

import copy
import os
import pickle
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

BLOB_SUFFIX = ".bin"

#: Errors a blob read treats as "missing" (validation does the rest).
_READ_ERRORS = (OSError, ValueError, pickle.UnpicklingError, EOFError, AttributeError, ImportError)


def blob_crc(data: bytes) -> int:
    """The content fingerprint blobs are addressed by."""
    return zlib.crc32(data) & 0xFFFFFFFF


def blob_name(name: str, crc: int) -> str:
    """Filename of a blob: logical name plus content CRC."""
    return f"{name}-{crc:08x}{BLOB_SUFFIX}"


def write_blob(directory: Path, name: str, data: bytes) -> Path:
    """Atomically publish ``data`` under ``name``; returns the final path.

    Content-addressed: if the exact payload is already published the
    existing file is kept (duplicate completions are free).  The temporary
    sibling carries the writer's pid and thread id, so concurrent writers
    of the *same* payload race only at the final ``os.replace`` — which is
    atomic and lands identical bytes either way.
    """
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / blob_name(name, blob_crc(data))
    # Validate, don't just stat: an existing file at the content-addressed
    # path is normally the same bytes (rename is atomic), but in-place disk
    # corruption would otherwise make this republish a silent no-op.
    if path.is_file() and read_blob(path) is not None:
        return path
    temporary = path.with_name(f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
    with open(temporary, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
    return path


def read_blob(path: Path) -> Optional[bytes]:
    """The validated bytes of one blob, or ``None`` on any defect.

    The filename's CRC is recomputed over the content; a mismatch (torn
    write, corruption) reads as *missing*, so callers re-dispatch instead
    of consuming garbage.
    """
    stem = path.name
    if not stem.endswith(BLOB_SUFFIX):
        return None
    try:
        expected = int(stem[: -len(BLOB_SUFFIX)].rsplit("-", 1)[1], 16)
    except (IndexError, ValueError):
        return None
    try:
        data = path.read_bytes()
    except OSError:
        return None
    if blob_crc(data) != expected:
        return None
    return data


def find_blob(directory: Path, name: str) -> Optional[Path]:
    """The published path of ``name``, if any generation of it exists."""
    if not directory.is_dir():
        return None
    prefix = f"{name}-"
    for path in sorted(directory.iterdir()):
        stem = path.name
        if not (stem.startswith(prefix) and stem.endswith(BLOB_SUFFIX)):
            continue
        # The logical name itself may contain dashes; require the remainder
        # to be exactly one 8-hex-digit CRC so "unit-1" never matches
        # "unit-10"'s blobs.
        candidate = stem[len(prefix): -len(BLOB_SUFFIX)]
        if len(candidate) == 8 and all(c in "0123456789abcdef" for c in candidate):
            return path
    return None


def dump_object(obj: Any) -> bytes:
    """Pickle an object for transport (functions ship by reference)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def load_object(data: bytes) -> Any:
    """Inverse of :func:`dump_object` (trusted-cluster assumption: the
    queue directory is as trusted as the code itself)."""
    return pickle.loads(data)


# ----------------------------------------------------------------------
# Cache-aware state shipping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheRef:
    """A pointer into the shared encoding cache replacing an in-state array.

    Resolution goes through the cache's own fingerprint-validated loader,
    so a worker can never pair a stale cache entry with a fresh plan: any
    mismatch loads ``None`` and the unit fails (and is retried / falls back
    serially on the coordinator).  ``array`` names which of the entry's
    arrays stands in (``irs``/``mu``/``sigma``).
    """

    task_name: str
    side: str
    encoding_version: int
    fingerprint: Dict[str, Any]
    array: str = "irs"

    def resolve(self, cache) -> Any:
        encodings = cache.load(
            self.task_name, self.side, self.encoding_version, self.fingerprint
        )
        if encodings is None:
            raise RuntimeError(
                f"shared cache has no matching entry for {self.task_name!r}/"
                f"{self.side}-v{self.encoding_version} (fingerprint mismatch or torn entry)"
            )
        return getattr(encodings, self.array)


_CACHE_HANDLES: Dict[str, object] = {}
_CACHE_LOCK = threading.Lock()


def _cache_for(cache_dir: str):
    """Per-process memo of attached shared caches (one handle per dir)."""
    with _CACHE_LOCK:
        handle = _CACHE_HANDLES.get(cache_dir)
        if handle is None:
            from repro.engine.persist import PersistentEncodingCache

            handle = PersistentEncodingCache(cache_dir)
            _CACHE_HANDLES[cache_dir] = handle
        return handle


#: Worker-side memo of attached states: a unit stream touches at most a
#: couple of live states at once (index build, then query+score), so a
#: small LRU keeps re-attachment free without pinning every job a
#: long-lived worker ever served.
_ATTACHED_STATES: "OrderedDict[str, object]" = OrderedDict()
_ATTACH_DEPTH = 4
_ATTACH_LOCK = threading.Lock()


@dataclass(frozen=True)
class DistribStateSpec:
    """How a remote worker reaches one published stage state.

    ``path`` is the state blob (content-addressed, so the path doubles as
    the state's identity); ``refs`` lists attributes that were stripped
    before pickling and must be re-attached from the shared cache at
    ``cache_dir``.  ``attach`` is the hook
    :func:`repro.engine.shard.worker_state` duck-types on.
    """

    path: str
    cache_dir: Optional[str] = None
    refs: Tuple[Tuple[str, CacheRef], ...] = ()

    def attach(self) -> object:
        with _ATTACH_LOCK:
            state = _ATTACHED_STATES.get(self.path)
            if state is not None:
                _ATTACHED_STATES.move_to_end(self.path)
                return state
        data = read_blob(Path(self.path))
        if data is None:
            raise RuntimeError(f"state artifact missing or torn: {self.path}")
        state = load_object(data)
        for attr, ref in self.refs:
            if self.cache_dir is None:
                raise RuntimeError("state carries cache refs but no cache_dir")
            setattr(state, attr, ref.resolve(_cache_for(self.cache_dir)))
        with _ATTACH_LOCK:
            _ATTACHED_STATES[self.path] = state
            _ATTACHED_STATES.move_to_end(self.path)
            while len(_ATTACHED_STATES) > _ATTACH_DEPTH:
                _ATTACHED_STATES.popitem(last=False)
        return state


def strip_cache_refs(
    state: object, refs: Iterable[Tuple[object, CacheRef]]
) -> Tuple[object, Tuple[Tuple[str, CacheRef], ...]]:
    """Replace registered arrays inside ``state`` with cache references.

    Matching is by object identity against the coordinator's registered
    ``(array, ref)`` pairs — the store memoizes its table encodings, so the
    arrays the executor builds its stage state from *are* the registered
    objects when the shared cache holds them.  States without a ``__dict__``
    or without any registered attribute ship unchanged (correctness never
    depends on the substitution; it only shrinks the artifact).
    """
    index = {id(array): ref for array, ref in refs}
    if not index or not hasattr(state, "__dict__"):
        return state, ()
    stripped: List[Tuple[str, CacheRef]] = []
    replaced = None
    for attr, value in list(vars(state).items()):
        ref = index.get(id(value))
        if ref is None:
            continue
        if replaced is None:
            replaced = copy.copy(state)
        setattr(replaced, attr, None)
        stripped.append((attr, ref))
    if replaced is None:
        return state, ()
    return replaced, tuple(stripped)
