"""Work-queue transports: leased units between a coordinator and workers.

Two interchangeable backends move work units (opaque byte payloads, see
:mod:`repro.distrib.artifacts`) from one coordinator to N workers:

:class:`FileLeaseQueue`
    A directory protocol for shared-filesystem clusters — the only thing
    coordinator and workers must share.  Three subdirectories::

        <root>/units/    unit-<id>-<crc>.bin      (work payloads)
        <root>/leases/   <id>.lease               (claim markers)
        <root>/results/  <id>-<crc>.bin           (result payloads)

    A worker claims a unit by creating its lease file with ``O_EXCL`` —
    exactly one claimant wins, atomically, with no server.  Liveness is the
    lease file's mtime: the worker touches it on a heartbeat interval, and
    a coordinator that observes a stale mtime breaks the lease so another
    worker can claim the unit.  Results are content-addressed blobs, so a
    re-dispatched unit completed twice converges on identical bytes and a
    torn result (worker killed mid-write) is indistinguishable from no
    result.  Because every state transition is a file, a *restarted*
    coordinator recovers completed units by rescanning ``results/``.

:class:`SocketWorkQueue` / :class:`SocketQueueClient`
    The same claim/heartbeat/complete protocol over a stdlib TCP socket
    with newline-delimited JSON messages (base64 payloads) — the PR 7 serve
    daemon's wire idiom — for workers that reach the coordinator over the
    network rather than a shared queue directory.  State lives in the
    coordinator process; lease liveness is the last heartbeat's wall-clock
    age.

Both backends expose the same two narrow interfaces: the *worker* side
(``claim`` / ``heartbeat`` / ``complete``) and the *coordinator* side
(``submit`` / ``result`` / ``lease_age`` / ``break_lease``).
"""

from __future__ import annotations

import base64
import json
import os
import socket
import socketserver
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.distrib.artifacts import find_blob, read_blob, write_blob

PathLike = Union[str, Path]


@dataclass(frozen=True)
class WorkUnit:
    """One leased work item, as handed to a worker."""

    unit_id: str
    payload: bytes


class FileLeaseQueue:
    """Lease-directory transport over a shared filesystem (serverless)."""

    def __init__(self, root: PathLike, worker_id: Optional[str] = None) -> None:
        self.root = Path(root)
        self.units_dir = self.root / "units"
        self.leases_dir = self.root / "leases"
        self.results_dir = self.root / "results"
        for directory in (self.units_dir, self.leases_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    def submit(self, unit_id: str, payload: bytes) -> None:
        """Publish a unit for claiming (idempotent for identical payloads)."""
        write_blob(self.units_dir, unit_id, payload)

    def result(self, unit_id: str) -> Optional[bytes]:
        """The validated result payload of a unit, or ``None``."""
        path = find_blob(self.results_dir, unit_id)
        if path is None:
            return None
        return read_blob(path)

    def discard_result(self, unit_id: str) -> None:
        """Drop a (typically torn) result blob so the unit can run again."""
        path = find_blob(self.results_dir, unit_id)
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass

    def lease_age(self, unit_id: str) -> Optional[float]:
        """Seconds since the unit's lease last heartbeat, or ``None``."""
        try:
            return max(0.0, time.time() - self._lease_path(unit_id).stat().st_mtime)
        except OSError:
            return None

    def break_lease(self, unit_id: str) -> None:
        """Revoke a lease (expired holder), making the unit claimable again."""
        try:
            self._lease_path(unit_id).unlink()
        except OSError:
            pass

    def cancel(self, unit_id: str) -> None:
        """Withdraw a unit entirely (shutdown path)."""
        self.break_lease(unit_id)
        path = find_blob(self.units_dir, unit_id)
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim(self) -> Optional[WorkUnit]:
        """Lease one available unit, or ``None`` when nothing is claimable.

        Availability means: a published unit blob with no live lease file
        and no published result.  The ``O_EXCL`` create of the lease file is
        the atomic claim; losers simply move to the next unit.
        """
        try:
            names = sorted(path.name for path in self.units_dir.iterdir())
        except OSError:
            return None
        for name in names:
            unit_id = self._unit_id_of(name)
            if unit_id is None:
                continue
            if self._lease_path(unit_id).exists():
                continue
            if find_blob(self.results_dir, unit_id) is not None:
                continue
            if not self._try_lease(unit_id):
                continue
            payload = read_blob(self.units_dir / name)
            if payload is None:
                # Torn unit blob: release the claim and let the coordinator
                # republish (its submit is idempotent).
                self.break_lease(unit_id)
                continue
            return WorkUnit(unit_id=unit_id, payload=payload)
        return None

    def heartbeat(self, unit_id: str) -> bool:
        """Refresh the lease's liveness; ``False`` if it was revoked."""
        try:
            os.utime(self._lease_path(unit_id))
            return True
        except OSError:
            return False

    def complete(self, unit_id: str, result: bytes) -> None:
        """Publish a unit's result and release its lease."""
        write_blob(self.results_dir, unit_id, result)
        self.break_lease(unit_id)

    # ------------------------------------------------------------------
    def _lease_path(self, unit_id: str) -> Path:
        return self.leases_dir / f"{unit_id}.lease"

    def _try_lease(self, unit_id: str) -> bool:
        try:
            descriptor = os.open(
                self._lease_path(unit_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        except OSError:
            return False
        try:
            os.write(descriptor, self.worker_id.encode("utf-8", "replace"))
        finally:
            os.close(descriptor)
        return True

    @staticmethod
    def _unit_id_of(blob_name: str) -> Optional[str]:
        if not blob_name.endswith(".bin"):
            return None
        stem = blob_name[: -len(".bin")]
        unit_id, _, crc = stem.rpartition("-")
        if not unit_id or len(crc) != 8:
            return None
        return unit_id


# ----------------------------------------------------------------------
# Socket transport (newline-delimited JSON, base64 payloads)
# ----------------------------------------------------------------------
def _send_message(sock: socket.socket, message: Dict[str, object]) -> None:
    sock.sendall(json.dumps(message).encode("utf-8") + b"\n")


def _recv_message(handle) -> Optional[Dict[str, object]]:
    line = handle.readline()
    if not line:
        return None
    try:
        decoded = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return decoded if isinstance(decoded, dict) else None


class _QueueHandler(socketserver.StreamRequestHandler):
    """One request = one JSON line in, one JSON line out."""

    def handle(self) -> None:  # pragma: no cover - exercised via client calls
        message = _recv_message(self.rfile)
        if message is None:
            return
        response = self.server.queue._handle(message)  # type: ignore[attr-defined]
        self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")


class _QueueServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class SocketWorkQueue:
    """Coordinator-resident queue served over a TCP socket."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._lock = threading.Lock()
        self._units: Dict[str, bytes] = {}
        self._last_beat: Dict[str, float] = {}
        self._results: Dict[str, bytes] = {}
        self._server = _QueueServer((host, port), _QueueHandler)
        self._server.queue = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="distrib-queue", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Coordinator side (direct, in-process)
    # ------------------------------------------------------------------
    def submit(self, unit_id: str, payload: bytes) -> None:
        with self._lock:
            self._units[unit_id] = payload

    def result(self, unit_id: str) -> Optional[bytes]:
        with self._lock:
            return self._results.get(unit_id)

    def discard_result(self, unit_id: str) -> None:
        with self._lock:
            self._results.pop(unit_id, None)

    def lease_age(self, unit_id: str) -> Optional[float]:
        with self._lock:
            beat = self._last_beat.get(unit_id)
        if beat is None:
            return None
        return max(0.0, time.time() - beat)

    def break_lease(self, unit_id: str) -> None:
        with self._lock:
            self._last_beat.pop(unit_id, None)

    def cancel(self, unit_id: str) -> None:
        with self._lock:
            self._units.pop(unit_id, None)
            self._last_beat.pop(unit_id, None)

    # ------------------------------------------------------------------
    # Wire protocol (worker requests)
    # ------------------------------------------------------------------
    def _handle(self, message: Dict[str, object]) -> Dict[str, object]:
        op = message.get("op")
        if op == "claim":
            with self._lock:
                for unit_id, payload in self._units.items():
                    if unit_id in self._last_beat or unit_id in self._results:
                        continue
                    self._last_beat[unit_id] = time.time()
                    return {
                        "ok": True,
                        "unit": unit_id,
                        "payload": base64.b64encode(payload).decode("ascii"),
                    }
            return {"ok": True, "unit": None}
        if op == "heartbeat":
            unit_id = str(message.get("unit"))
            with self._lock:
                live = unit_id in self._last_beat
                if live:
                    self._last_beat[unit_id] = time.time()
            return {"ok": live}
        if op == "complete":
            unit_id = str(message.get("unit"))
            try:
                payload = base64.b64decode(str(message.get("payload")), validate=True)
            except (ValueError, TypeError):
                return {"ok": False, "error": "bad payload"}
            with self._lock:
                self._results[unit_id] = payload
                self._last_beat.pop(unit_id, None)
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


class SocketQueueClient:
    """Worker-side adapter speaking :class:`SocketWorkQueue`'s protocol."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.worker_id = f"{socket.gethostname()}-{os.getpid()}"

    def _call(self, message: Dict[str, object]) -> Dict[str, object]:
        with socket.create_connection((self.host, self.port), timeout=self.timeout) as sock:
            _send_message(sock, message)
            with sock.makefile("rb") as handle:
                response = _recv_message(handle)
        return response or {"ok": False, "error": "no response"}

    def claim(self) -> Optional[WorkUnit]:
        response = self._call({"op": "claim", "worker": self.worker_id})
        unit_id = response.get("unit")
        if not response.get("ok") or not unit_id:
            return None
        try:
            payload = base64.b64decode(str(response.get("payload")), validate=True)
        except (ValueError, TypeError):
            return None
        return WorkUnit(unit_id=str(unit_id), payload=payload)

    def heartbeat(self, unit_id: str) -> bool:
        return bool(self._call({"op": "heartbeat", "unit": unit_id}).get("ok"))

    def complete(self, unit_id: str, result: bytes) -> None:
        self._call({
            "op": "complete",
            "unit": unit_id,
            "payload": base64.b64encode(result).decode("ascii"),
        })
