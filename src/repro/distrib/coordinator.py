"""The coordinator: leased dispatch of executor stage units, with recovery.

The distributed runner deliberately adds **no new resolution logic**.  The
existing :class:`~repro.engine.plan.ResolutionExecutor` and
:class:`~repro.engine.plan.DeltaResolutionExecutor` already decompose a
:class:`~repro.engine.plan.ResolutionPlan` into stage units — LSH
partial-bucket builds (``_hash_task``), query shards (``_query_task``),
score batches (``_score_task``), delta encode ranges
(``_encode_range_task``) — and already merge results deterministically by
``(batch_index, pair_index)``.  What they need from a pool is exactly three
things: ``submit(fn, *args) -> Future``, a ``broken`` flag, and a way to
publish stage state.  :class:`DistributedPool` provides those over a
:class:`Coordinator`, and :func:`repro.engine.shard.pool_override` routes
the executors to it — so a distributed run executes the *same* unit graph
as a local pooled run, merged by the *same* code, and inherits its
byte-identity contract with the serial stream.

The coordinator's own job is delivery, not computation:

* serialize each submitted unit (function-by-reference plus arguments)
  into a content-addressed payload and enqueue it under a deterministic
  unit id (job id + function + argument fingerprint), so a *restarted*
  coordinator re-submitting the same logical units adopts any results a
  previous run already completed;
* track leases: a unit whose worker stops heartbeating past the lease
  timeout is re-dispatched (bounded by ``max_retries``), and a torn result
  artifact — rejected by its content CRC — is discarded and re-dispatched
  the same way;
* surface unrecoverable failures as
  :class:`concurrent.futures.BrokenExecutor`, which the executors already
  translate into their crash-safe serial-tail fallback — a distributed run
  whose workers all die finishes correctly on the coordinator alone;
* account for the distributed overheads in the shared
  :class:`~repro.eval.timing.StageTimings` (``dispatch``, ``lease``,
  ``merge`` stages; ``units_dispatched`` / ``units_redispatched``
  counters).
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from concurrent.futures import BrokenExecutor, Future
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.distrib.artifacts import (
    CacheRef,
    DistribStateSpec,
    dump_object,
    load_object,
    strip_cache_refs,
    write_blob,
)
from repro.distrib.queue import FileLeaseQueue, SocketWorkQueue
from repro.engine.shard import WorkerPool, pool_override

#: Default seconds without a heartbeat before a lease is considered dead.
DEFAULT_LEASE_TIMEOUT = 10.0

#: Default re-dispatches per unit before the run falls back to serial.
DEFAULT_MAX_RETRIES = 3


class _UnitRecord:
    """Coordinator-side bookkeeping of one in-flight unit."""

    __slots__ = (
        "unit_id", "future", "enqueued_at", "attempts", "lease_seen_at", "label",
    )

    def __init__(self, unit_id: str, future: Future, label: str) -> None:
        self.unit_id = unit_id
        self.future = future
        self.enqueued_at = time.monotonic()
        self.attempts = 0
        self.lease_seen_at: Optional[float] = None
        self.label = label


class Coordinator:
    """Dispatch work units over a queue backend and collect their results."""

    def __init__(
        self,
        queue,
        state_dir: Union[str, Path],
        *,
        job_id: Optional[str] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
        poll_interval: float = 0.02,
        claim_timeout: Optional[float] = None,
        stage_timings=None,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.queue = queue
        self.state_dir = Path(state_dir)
        self.job_id = job_id or f"job-{os.getpid():x}-{int(time.time() * 1000):x}"
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.lease_timeout = float(lease_timeout)
        self.max_retries = int(max_retries)
        self.poll_interval = float(poll_interval)
        self.claim_timeout = claim_timeout
        self.stage_timings = stage_timings
        self._records: Dict[str, _UnitRecord] = {}
        self._issued: Dict[str, int] = {}
        self._cache_refs: List[Tuple[object, CacheRef]] = []
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._closed = False
        self._poller: Optional[threading.Thread] = None
        self.units_dispatched = 0
        self.units_redispatched = 0
        self.units_resumed = 0

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def _record_stage(self, stage: str, seconds: float, units: int = 1) -> None:
        if self.stage_timings is not None:
            self.stage_timings.record(stage, seconds, units=units)

    def _record_counter(self, name: str, value: int) -> None:
        if self.stage_timings is not None and value:
            self.stage_timings.record_counter(name, value)

    # ------------------------------------------------------------------
    # State publication (the DistributedPool delegates here)
    # ------------------------------------------------------------------
    def add_cache_ref(self, array: object, ref: CacheRef) -> None:
        """Register an array the shared cache already holds.

        Published states carrying that exact array (by identity) ship a
        :class:`CacheRef` instead of the bytes, and workers re-attach it
        through the shared cache's codec-aware loader.
        """
        self._cache_refs.append((array, ref))

    def publish_state(self, token: str, state: object) -> DistribStateSpec:
        started = time.perf_counter()
        stripped, refs = strip_cache_refs(state, self._cache_refs)
        path = write_blob(self.state_dir, "state", dump_object(stripped))
        self._record_stage("dispatch", time.perf_counter() - started)
        return DistribStateSpec(path=str(path), cache_dir=self.cache_dir, refs=refs)

    # ------------------------------------------------------------------
    # Unit dispatch
    # ------------------------------------------------------------------
    def submit(self, fn, *args, **kwargs) -> Future:
        """Enqueue one unit; the Future completes when a worker publishes
        its validated result (or fails with :class:`BrokenExecutor` after
        retries are exhausted)."""
        started = time.perf_counter()
        future: Future = Future()
        future.set_running_or_notify_cancel()
        unit_id = self._unit_id(fn, args, kwargs)
        with self._lock:
            if self._closed:
                raise RuntimeError("coordinator is closed")
            record = _UnitRecord(unit_id, future, label=getattr(fn, "__name__", str(fn)))
            self._records[unit_id] = record
        resumed = self._try_adopt(record)
        if not resumed:
            self.queue.submit(unit_id, dump_object((fn, args, kwargs)))
        self.units_dispatched += 1
        self._record_stage("dispatch", time.perf_counter() - started)
        self._record_counter("units_dispatched", 1)
        self._ensure_poller()
        self._wake.set()
        return future

    def _unit_id(self, fn, args, kwargs) -> str:
        """Deterministic unit identity: job + function + argument content.

        :class:`~repro.engine.shard.StateHandle` arguments are identified
        by their published artifact path (content-addressed) rather than
        their process-local token, so the same logical unit re-submitted by
        a restarted coordinator maps to the same id — the hook that lets a
        restart adopt completed results instead of recomputing them.
        """
        logical: List[object] = [getattr(fn, "__module__", ""), getattr(fn, "__qualname__", str(fn))]
        for arg in args:
            spec = getattr(arg, "spec", None)
            if getattr(arg, "token", None) is not None and isinstance(spec, DistribStateSpec):
                logical.append(("state", spec.path, spec.refs))
            else:
                logical.append(arg)
        logical.append(tuple(sorted(kwargs.items())))
        crc = zlib.crc32(dump_object(tuple(logical))) & 0xFFFFFFFF
        name = getattr(fn, "__name__", "unit").replace("_", "")
        base = f"{self.job_id}-{name}-{crc:08x}"
        with self._lock:
            repeat = self._issued.get(base, 0)
            self._issued[base] = repeat + 1
        # Re-submissions of an identical logical unit within one run (the
        # executors' dispatch calibration no-ops) get a fresh identity so
        # each measures a real round trip; the first instance keeps the
        # restart-stable id.
        return base if repeat == 0 else f"{base}-r{repeat}"

    def _try_adopt(self, record: _UnitRecord) -> bool:
        """Adopt a result a previous coordinator run already completed."""
        data = self.queue.result(record.unit_id)
        if data is None:
            return False
        if self._deliver(record, data, resumed=True):
            self.units_resumed += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Collection / recovery loop
    # ------------------------------------------------------------------
    def _ensure_poller(self) -> None:
        with self._lock:
            if self._poller is None or not self._poller.is_alive():
                self._poller = threading.Thread(
                    target=self._poll_loop, name="distrib-coordinator", daemon=True
                )
                self._poller.start()

    def _poll_loop(self) -> None:
        while True:
            self._wake.wait(timeout=self.poll_interval)
            self._wake.clear()
            with self._lock:
                if self._closed:
                    return
                pending = [r for r in self._records.values() if not r.future.done()]
            for record in pending:
                try:
                    self._poll_unit(record)
                except Exception as error:  # pragma: no cover - defensive
                    if not record.future.done():
                        record.future.set_exception(
                            BrokenExecutor(f"coordinator poll failed: {error}")
                        )

    def _poll_unit(self, record: _UnitRecord) -> None:
        data = self.queue.result(record.unit_id)
        if data is not None:
            if not self._deliver(record, data, resumed=False):
                # Unreadable result object: discard and re-dispatch.
                self.queue.discard_result(record.unit_id)
                self._bump_attempts(record, reason="torn result")
            return
        age = self.queue.lease_age(record.unit_id)
        now = time.monotonic()
        if age is not None:
            if record.lease_seen_at is None:
                record.lease_seen_at = now
                self._record_stage("lease", max(0.0, now - record.enqueued_at))
            if age > self.lease_timeout:
                self.queue.break_lease(record.unit_id)
                record.lease_seen_at = None
                record.enqueued_at = now
                self._bump_attempts(record, reason="lease expired")
            return
        if (
            record.lease_seen_at is None
            and self.claim_timeout is not None
            and now - record.enqueued_at > self.claim_timeout
            and not record.future.done()
        ):
            record.future.set_exception(
                BrokenExecutor(
                    f"unit {record.unit_id} unclaimed for {self.claim_timeout:.0f}s "
                    "(no live workers?)"
                )
            )
            self.queue.cancel(record.unit_id)

    def _bump_attempts(self, record: _UnitRecord, reason: str) -> None:
        record.attempts += 1
        self.units_redispatched += 1
        self._record_counter("units_redispatched", 1)
        if record.attempts > self.max_retries and not record.future.done():
            record.future.set_exception(
                BrokenExecutor(
                    f"unit {record.unit_id} failed after {record.attempts} attempts ({reason})"
                )
            )
            self.queue.cancel(record.unit_id)

    def _deliver(self, record: _UnitRecord, data: bytes, resumed: bool) -> bool:
        """Decode a result payload into the unit's future; ``False`` = torn."""
        started = time.perf_counter()
        try:
            status, value = load_object(data)
        except Exception:
            return False
        if status == "ok":
            if record.lease_seen_at is None and not resumed:
                # The lease came and went between two polls; account the
                # whole wait as lease time.
                self._record_stage("lease", max(0.0, time.monotonic() - record.enqueued_at))
                record.lease_seen_at = time.monotonic()
            if not record.future.done():
                record.future.set_result(value)
            self._record_stage("merge", time.perf_counter() - started)
            return True
        # A worker-side exception: deterministic failures will not heal by
        # retrying, so treat it like an expired attempt (bounded), ending in
        # the executors' serial fallback.
        self.queue.discard_result(record.unit_id)
        self._bump_attempts(record, reason=f"worker error: {value}")
        return True

    # ------------------------------------------------------------------
    def pending_units(self) -> int:
        with self._lock:
            return sum(1 for r in self._records.values() if not r.future.done())

    def close(self) -> None:
        """Stop the poll loop and cancel anything still outstanding."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            records = list(self._records.values())
        self._wake.set()
        if self._poller is not None:
            self._poller.join(timeout=5.0)
        for record in records:
            if not record.future.done():
                record.future.set_exception(BrokenExecutor("coordinator closed"))
                self.queue.cancel(record.unit_id)


class DistributedPool(WorkerPool):
    """A :class:`~repro.engine.shard.WorkerPool` facade over a coordinator.

    Installed via :func:`repro.engine.shard.pool_override`, it receives the
    executors' stage units verbatim.  ``publish_state`` is the hook
    :func:`~repro.engine.shard.publish_worker_state` duck-types on; the
    engine never touches ``executor`` (``submit`` is overridden), so none
    exists.
    """

    def __init__(self, coordinator: Coordinator, workers: int) -> None:
        super().__init__(executor=None, kind="distrib", workers=int(workers))
        self.coordinator = coordinator

    def submit(self, fn, /, *args, **kwargs) -> Future:
        return self.coordinator.submit(fn, *args, **kwargs)

    def publish_state(self, token: str, state: object) -> DistribStateSpec:
        return self.coordinator.publish_state(token, state)

    def shutdown(self) -> None:  # pragma: no cover - owner-managed lifetime
        self.coordinator.close()


class DistributedRuntime:
    """One distributed execution context: queue + coordinator + pool.

    The object a caller holds across a resolve (or a serve session):
    construct with :meth:`file_queue` or :meth:`socket_queue`, ``activate()``
    around engine work, ``close()`` when done.  Usable as a context
    manager.
    """

    def __init__(
        self,
        queue,
        state_dir: Union[str, Path],
        *,
        workers: int = 2,
        owns_queue: bool = True,
        **coordinator_options: Any,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.queue = queue
        self.coordinator = Coordinator(queue, state_dir, **coordinator_options)
        self.pool = DistributedPool(self.coordinator, workers)
        self._owns_queue = owns_queue

    @classmethod
    def file_queue(
        cls, queue_dir: Union[str, Path], *, workers: int = 2, **options: Any
    ) -> "DistributedRuntime":
        """A runtime over a shared-directory lease queue (``queue_dir``)."""
        root = Path(queue_dir)
        return cls(
            FileLeaseQueue(root), root / "state", workers=workers, **options
        )

    @classmethod
    def socket_queue(
        cls,
        state_dir: Union[str, Path],
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        **options: Any,
    ) -> "DistributedRuntime":
        """A runtime serving units over TCP; state still rides the shared
        filesystem at ``state_dir`` (workers share at least that)."""
        return cls(
            SocketWorkQueue(host=host, port=port), state_dir, workers=workers, **options
        )

    @property
    def workers(self) -> int:
        return self.pool.workers

    def activate(self):
        """Route the engine's pooled stages through this runtime."""
        return pool_override(self.pool)

    def add_cache_ref(self, array: object, ref: CacheRef) -> None:
        self.coordinator.add_cache_ref(array, ref)

    def close(self) -> None:
        self.coordinator.close()
        if self._owns_queue:
            close = getattr(self.queue, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "DistributedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
