"""Table V — supervised matching effectiveness (VAER vs DeepER/DeepMatcher/DITTO).

Each system is trained on the domain's training pairs (threshold tuned on the
validation pairs) and evaluated on the test pairs.  Expected shape (paper):
VAER lands in the same F1 band as the end-to-end deep baselines — sometimes a
little above, sometimes a little below, never collapsing.
"""

from __future__ import annotations

import numpy as np

from repro.eval.harness import matching_experiment
from repro.eval.reporting import format_matching_table

SYSTEMS = ("deeper", "deepmatcher", "ditto")

#: Shared across the Table V and Table VI benchmarks (computed once).
_RESULTS_CACHE = {}


def compute_matching_results(domains, harness_config):
    if not _RESULTS_CACHE:
        for name, domain in domains.items():
            _RESULTS_CACHE[name] = matching_experiment(domain, harness_config, systems=SYSTEMS)
    return _RESULTS_CACHE


def test_table5_matching_effectiveness(benchmark, domains, harness_config):
    results = compute_matching_results(domains, harness_config)

    benchmark(lambda: matching_experiment(
        domains["restaurants"], harness_config, systems=("deeper",)
    ))

    print("\n\nTable V — supervised matching P/R/F1\n")
    print(format_matching_table(results))

    vaer_f1 = np.array([rows[0].metrics.f1 for rows in results.values()])
    baseline_best_f1 = np.array([
        max(row.metrics.f1 for row in rows[1:]) for rows in results.values()
    ])
    # Shape check: VAER is comparable to the best baseline on average (within
    # 0.15 F1) and never degenerates to an unusable matcher.
    assert vaer_f1.mean() >= baseline_best_f1.mean() - 0.15
    assert (vaer_f1 > 0.4).all()
    # And the baselines themselves must be real matchers, not straw men.
    assert baseline_best_f1.mean() > 0.5
