"""Quantized-tier memory benchmark — footprint, recall, and match fidelity.

Resolves every registry domain twice through the delta engine — once with the
``raw`` float codec, once with the ``int8`` scalar-quantized codec — against
separate persistent caches, then measures what the quantized tier actually
buys and what it costs:

* **bytes on disk** — total cache directory size per codec;
* **warm-load bytes** — resident store bytes after a cold-process warm load
  (the int8 store stays quantized in memory; floats are rehydrated only for
  surviving pairs);
* **peak RSS** — process resident set size at the end of the sweep;
* **blocking recall vs exact** — fraction of the exact (raw) candidate set
  the quantized blocking pass recovers;
* **F1 delta** — end-to-end match-set F1 of the int8 run scored against the
  raw run's match set as ground truth.

Emits ``BENCH_quant.json`` and fails if compression falls below
:data:`MIN_COMPRESSION` or recall below :data:`MIN_RECALL` on any domain.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from benchmarks.conftest import bench_scale
from repro.config import BlockingConfig, VAEConfig
from repro.core.representation import EntityRepresentationModel
from repro.data.generators import DOMAIN_NAMES, load_domain
from repro.engine import (
    PersistentEncodingCache,
    ShardedEncodingStore,
    merge_scored_batches,
    resolve_delta,
)
from repro.eval.timing import EngineCounters
from repro.serve.session import process_rss_bytes

#: Required on-disk and warm-resident advantage of int8 over raw floats.
MIN_COMPRESSION = 4.0
#: Pinned blocking recall of quantized candidates against the exact set.
MIN_RECALL = 0.95
#: Pinned bound on the per-domain match-set F1 drop (raw run as truth).
MAX_F1_DELTA = 0.05
#: Match threshold for the deterministic distance matcher below.
MATCH_THRESHOLD = 0.3


class _DistanceMatcher:
    """Deterministic stand-in matcher: probability decays with IR distance,
    computed elementwise per pair so output is batch-composition independent."""

    def predict_proba(self, left_irs: np.ndarray, right_irs: np.ndarray) -> np.ndarray:
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


def _dir_bytes(root: Path) -> int:
    return sum(path.stat().st_size for path in root.rglob("*") if path.is_file())


def _resolve_with_codec(representation, domain, codec, cache_dir):
    cache = PersistentEncodingCache(cache_dir, chunk_rows=64)
    store = ShardedEncodingStore(
        representation, domain.task, counters=EngineCounters(),
        shard_rows=256, persistent=cache, codec=codec,
    )
    executor = resolve_delta(
        store, _DistanceMatcher(), baseline=None,
        blocking=BlockingConfig(seed=19), k=8, batch_size=512,
    )
    scored = merge_scored_batches(executor.run())
    return store, scored


def _warm_load_bytes(representation, domain, codec, cache_dir) -> int:
    """Resident store bytes after a fresh store warm-loads the cache."""
    cache = PersistentEncodingCache(cache_dir, chunk_rows=64)
    store = ShardedEncodingStore(
        representation, domain.task, counters=EngineCounters(),
        shard_rows=256, persistent=cache, codec=codec,
    )
    store.table_encodings("left")
    store.table_encodings("right")
    assert store.counters.tables_encoded == 0, "warm load must not re-encode"
    return store.resident_bytes()


def _match_set(scored):
    return {
        pair for pair, probability in zip(scored.pairs, scored.probabilities)
        if probability >= MATCH_THRESHOLD
    }


def _f1(predicted, truth) -> float:
    if not predicted or not truth:
        return 1.0 if predicted == truth else 0.0
    tp = len(predicted & truth)
    precision = tp / len(predicted)
    recall = tp / len(truth)
    return 0.0 if tp == 0 else 2 * precision * recall / (precision + recall)


def test_quant_memory_footprint(tmp_path):
    scale = 0.3 * bench_scale()
    config = VAEConfig(ir_dim=24, hidden_dim=32, latent_dim=12, epochs=2, seed=7)

    per_domain = {}
    for name in DOMAIN_NAMES:
        domain = load_domain(name, scale=scale)
        representation = EntityRepresentationModel(config, ir_method="lsa").fit(domain.task)

        raw_dir = tmp_path / name / "raw"
        int8_dir = tmp_path / name / "int8"
        raw_store, raw_scored = _resolve_with_codec(representation, domain, "raw", raw_dir)
        int8_store, int8_scored = _resolve_with_codec(representation, domain, "int8", int8_dir)

        raw_pairs, int8_pairs = set(raw_scored.pairs), set(int8_scored.pairs)
        recall = len(raw_pairs & int8_pairs) / max(len(raw_pairs), 1)
        f1_delta = 1.0 - _f1(_match_set(int8_scored), _match_set(raw_scored))

        raw_disk, int8_disk = _dir_bytes(raw_dir), _dir_bytes(int8_dir)
        raw_warm = _warm_load_bytes(representation, domain, "raw", raw_dir)
        int8_warm = _warm_load_bytes(representation, domain, "int8", int8_dir)

        per_domain[name] = {
            "rows": len(domain.task.left) + len(domain.task.right),
            "raw_disk_bytes": raw_disk,
            "int8_disk_bytes": int8_disk,
            "disk_compression": raw_disk / max(int8_disk, 1),
            "raw_warm_bytes": raw_warm,
            "int8_warm_bytes": int8_warm,
            "warm_compression": raw_warm / max(int8_warm, 1),
            "raw_resident_bytes": raw_store.resident_bytes(),
            "int8_resident_bytes": int8_store.resident_bytes(),
            "candidate_pairs_exact": len(raw_pairs),
            "candidate_pairs_int8": len(int8_pairs),
            "blocking_recall_vs_exact": recall,
            "f1_delta": f1_delta,
            "int8_bytes_decoded": int8_store.counters.bytes_decoded,
        }

    total_raw_disk = sum(row["raw_disk_bytes"] for row in per_domain.values())
    total_int8_disk = sum(row["int8_disk_bytes"] for row in per_domain.values())
    total_raw_warm = sum(row["raw_warm_bytes"] for row in per_domain.values())
    total_int8_warm = sum(row["int8_warm_bytes"] for row in per_domain.values())
    payload = {
        "scale": scale,
        "domains": per_domain,
        "total_raw_disk_bytes": total_raw_disk,
        "total_int8_disk_bytes": total_int8_disk,
        "disk_compression": total_raw_disk / max(total_int8_disk, 1),
        "total_raw_warm_bytes": total_raw_warm,
        "total_int8_warm_bytes": total_int8_warm,
        "warm_compression": total_raw_warm / max(total_int8_warm, 1),
        "min_recall": min(row["blocking_recall_vs_exact"] for row in per_domain.values()),
        "max_f1_delta": max(row["f1_delta"] for row in per_domain.values()),
        "peak_rss_bytes": process_rss_bytes(),
    }
    Path("BENCH_quant.json").write_text(json.dumps(payload, indent=2) + "\n")

    print("\n\nQuantized tier — memory footprint and fidelity (raw vs int8)\n")
    header = f"  {'domain':<12} {'disk raw':>10} {'disk int8':>10} {'x':>5} {'warm x':>6} {'recall':>7} {'F1 d':>6}"
    print(header)
    for name, row in per_domain.items():
        print(
            f"  {name:<12} {row['raw_disk_bytes']:>10} {row['int8_disk_bytes']:>10} "
            f"{row['disk_compression']:>5.1f} {row['warm_compression']:>6.1f} "
            f"{row['blocking_recall_vs_exact']:>7.3f} {row['f1_delta']:>6.3f}"
        )
    print(
        f"\n  totals: disk {payload['disk_compression']:.1f}x, "
        f"warm {payload['warm_compression']:.1f}x, "
        f"min recall {payload['min_recall']:.3f}, "
        f"max F1 delta {payload['max_f1_delta']:.3f}, "
        f"peak RSS {payload['peak_rss_bytes']}"
    )

    assert payload["disk_compression"] >= MIN_COMPRESSION, (
        f"int8 disk compression {payload['disk_compression']:.2f}x below {MIN_COMPRESSION}x"
    )
    assert payload["warm_compression"] >= MIN_COMPRESSION, (
        f"int8 warm-load compression {payload['warm_compression']:.2f}x below {MIN_COMPRESSION}x"
    )
    for name, row in per_domain.items():
        assert row["blocking_recall_vs_exact"] >= MIN_RECALL, (
            f"{name}: quantized blocking recall {row['blocking_recall_vs_exact']:.3f} "
            f"below pinned {MIN_RECALL}"
        )
        assert row["f1_delta"] <= MAX_F1_DELTA, (
            f"{name}: match-set F1 delta {row['f1_delta']:.3f} above pinned {MAX_F1_DELTA}"
        )
