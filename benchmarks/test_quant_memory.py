"""Quantized-tier memory benchmark — footprint, recall, and match fidelity.

Resolves every registry domain three times through the delta engine — with
the ``raw`` float codec, the ``int8`` scalar-quantized codec and the ``pq``
trained product-quantization codec — against separate persistent caches,
then measures what each quantized tier actually buys and what it costs:

* **bytes on disk** — total cache directory size per codec;
* **warm-load bytes** — resident store bytes after a cold-process warm load
  (quantized stores stay compressed in memory; floats are rehydrated only
  for surviving pairs);
* **peak RSS** — process resident set size at the end of the sweep;
* **blocking recall vs exact** — fraction of the exact (raw) candidate set
  the quantized blocking pass recovers (for ``pq`` the shortlist is
  deliberately expanded, so coverage — not set equality — is the contract);
* **gold F1 delta** — each codec's top-``|gold|`` scored pairs are scored
  against the generator's planted duplicate map (R-precision-style F1),
  and the quantized runs must land within :data:`MAX_F1_DELTA` of raw;
* **warm-path byte identity** — a ``pq`` warm load must serve the *same
  uint8 codes* the cold run wrote, without re-encoding anything
  (quantize-once, observable at the byte level).

Emits ``BENCH_quant.json`` and fails if compression falls below
:data:`MIN_COMPRESSION` (int8) / :data:`MIN_PQ_COMPRESSION` (pq), recall
below :data:`MIN_RECALL`, or the F1 delta above :data:`MAX_F1_DELTA` on
any domain.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from benchmarks.conftest import bench_scale
from repro.config import BlockingConfig, VAEConfig
from repro.core.representation import EntityRepresentationModel
from repro.data.generators import DOMAIN_NAMES, load_domain
from repro.engine import (
    PersistentEncodingCache,
    ShardedEncodingStore,
    merge_scored_batches,
    resolve_delta,
)
from repro.eval.timing import EngineCounters
from repro.serve.session import process_rss_bytes

#: Required on-disk and warm-resident advantage of int8 over raw floats.
MIN_COMPRESSION = 4.0
#: Required on-disk advantage of pq over raw floats (codes are ~1 byte per
#: 4 float dims; codebooks and per-chunk archive overhead eat the rest).
MIN_PQ_COMPRESSION = 12.0
#: Required warm-resident advantage of pq over raw floats.
MIN_PQ_WARM_COMPRESSION = 8.0
#: Pinned blocking recall of quantized candidates against the exact set.
MIN_RECALL = 0.95
#: Pinned bound on the gold-F1 drop of a quantized run vs the raw run.
MAX_F1_DELTA = 0.05

#: Tables are large enough here that per-chunk archive overhead and the
#: per-chunk codec params must amortise — the regime the pq tier targets.
CHUNK_ROWS = 256

QUANT_CODECS = ("int8", "pq")


class _DistanceMatcher:
    """Deterministic stand-in matcher: probability decays with IR distance,
    computed elementwise per pair so output is batch-composition independent."""

    def predict_proba(self, left_irs: np.ndarray, right_irs: np.ndarray) -> np.ndarray:
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


def _dir_bytes(root: Path) -> int:
    return sum(path.stat().st_size for path in root.rglob("*") if path.is_file())


def _resolve_with_codec(representation, domain, codec, cache_dir):
    cache = PersistentEncodingCache(cache_dir, chunk_rows=CHUNK_ROWS)
    store = ShardedEncodingStore(
        representation, domain.task, counters=EngineCounters(),
        shard_rows=256, persistent=cache, codec=codec,
    )
    executor = resolve_delta(
        store, _DistanceMatcher(), baseline=None,
        blocking=BlockingConfig(seed=19), k=8, batch_size=512,
    )
    scored = merge_scored_batches(executor.run())
    return store, scored


def _warm_store(representation, domain, codec, cache_dir):
    """A fresh store after warm-loading both sides from the cache."""
    cache = PersistentEncodingCache(cache_dir, chunk_rows=CHUNK_ROWS)
    store = ShardedEncodingStore(
        representation, domain.task, counters=EngineCounters(),
        shard_rows=256, persistent=cache, codec=codec,
    )
    store.table_encodings("left")
    store.table_encodings("right")
    assert store.counters.tables_encoded == 0, "warm load must not re-encode"
    return store


def _gold_pairs(domain):
    return {pair for pair in domain.duplicate_map.items()}


def _top_matches(scored, count):
    """The ``count`` highest-probability pairs, deterministically ordered."""
    ranked = sorted(
        zip(scored.pairs, scored.probabilities),
        key=lambda item: (-item[1], item[0].key()),
    )
    return {pair.key() for pair, _ in ranked[:count]}


def _f1(predicted, truth) -> float:
    if not predicted or not truth:
        return 1.0 if predicted == truth else 0.0
    tp = len(predicted & truth)
    precision = tp / len(predicted)
    recall = tp / len(truth)
    return 0.0 if tp == 0 else 2 * precision * recall / (precision + recall)


def test_quant_memory_footprint(tmp_path):
    scale = 6.0 * bench_scale()
    config = VAEConfig(ir_dim=24, hidden_dim=32, latent_dim=12, epochs=2, seed=7)

    per_domain = {}
    for name in DOMAIN_NAMES:
        domain = load_domain(name, scale=scale)
        representation = EntityRepresentationModel(config, ir_method="lsa").fit(domain.task)
        gold = _gold_pairs(domain)

        stores, scoreds, disk = {}, {}, {}
        for codec in ("raw",) + QUANT_CODECS:
            cache_dir = tmp_path / name / codec
            stores[codec], scoreds[codec] = _resolve_with_codec(
                representation, domain, codec, cache_dir
            )
            disk[codec] = _dir_bytes(cache_dir)

        raw_pairs = set(scoreds["raw"].pairs)
        f1 = {
            codec: _f1(_top_matches(scoreds[codec], len(gold)), gold)
            for codec in ("raw",) + QUANT_CODECS
        }

        warm = {}
        for codec in ("raw",) + QUANT_CODECS:
            store = _warm_store(representation, domain, codec, tmp_path / name / codec)
            warm[codec] = store.resident_bytes()
            if codec == "pq":
                # Quantize-once at the byte level: the warm store serves the
                # exact uint8 codes the cold run wrote.
                cold_mu = stores["pq"].table_encodings("right").mu
                warm_mu = store.table_encodings("right").mu
                assert np.array_equal(warm_mu.codes, cold_mu.codes), (
                    f"{name}: warm pq codes diverge from the cold encode"
                )
                assert warm_mu.params == cold_mu.params

        row = {
            "rows": len(domain.task.left) + len(domain.task.right),
            "gold_pairs": len(gold),
            "candidate_pairs_exact": len(raw_pairs),
            "raw_disk_bytes": disk["raw"],
            "raw_warm_bytes": warm["raw"],
            "raw_gold_f1": f1["raw"],
        }
        for codec in QUANT_CODECS:
            codec_pairs = set(scoreds[codec].pairs)
            row.update({
                f"{codec}_disk_bytes": disk[codec],
                f"{codec}_disk_compression": disk["raw"] / max(disk[codec], 1),
                f"{codec}_warm_bytes": warm[codec],
                f"{codec}_warm_compression": warm["raw"] / max(warm[codec], 1),
                f"candidate_pairs_{codec}": len(codec_pairs),
                f"{codec}_blocking_recall_vs_exact": (
                    len(raw_pairs & codec_pairs) / max(len(raw_pairs), 1)
                ),
                f"{codec}_gold_f1": f1[codec],
                f"{codec}_f1_delta": max(0.0, f1["raw"] - f1[codec]),
                f"{codec}_bytes_decoded": stores[codec].counters.bytes_decoded,
            })
        per_domain[name] = row

    totals = {
        f"total_{codec}_{kind}_bytes": sum(
            row[f"{codec}_{kind}_bytes"] for row in per_domain.values()
        )
        for codec in ("raw",) + QUANT_CODECS
        for kind in ("disk", "warm")
    }
    payload = {
        "scale": scale,
        "domains": per_domain,
        **totals,
        "peak_rss_bytes": process_rss_bytes(),
    }
    for codec in QUANT_CODECS:
        payload[f"{codec}_disk_compression"] = (
            totals["total_raw_disk_bytes"] / max(totals[f"total_{codec}_disk_bytes"], 1)
        )
        payload[f"{codec}_warm_compression"] = (
            totals["total_raw_warm_bytes"] / max(totals[f"total_{codec}_warm_bytes"], 1)
        )
        payload[f"{codec}_min_recall"] = min(
            row[f"{codec}_blocking_recall_vs_exact"] for row in per_domain.values()
        )
        payload[f"{codec}_max_f1_delta"] = max(
            row[f"{codec}_f1_delta"] for row in per_domain.values()
        )
    Path("BENCH_quant.json").write_text(json.dumps(payload, indent=2) + "\n")

    print("\n\nQuantized tier — memory footprint and fidelity (raw vs int8 vs pq)\n")
    header = (
        f"  {'domain':<12} {'disk raw':>10} {'int8 x':>6} {'pq x':>6} "
        f"{'warm int8':>9} {'warm pq':>7} {'rc int8':>7} {'rc pq':>7} "
        f"{'F1d i8':>6} {'F1d pq':>6}"
    )
    print(header)
    for name, row in per_domain.items():
        print(
            f"  {name:<12} {row['raw_disk_bytes']:>10} "
            f"{row['int8_disk_compression']:>6.1f} {row['pq_disk_compression']:>6.1f} "
            f"{row['int8_warm_compression']:>9.1f} {row['pq_warm_compression']:>7.1f} "
            f"{row['int8_blocking_recall_vs_exact']:>7.3f} "
            f"{row['pq_blocking_recall_vs_exact']:>7.3f} "
            f"{row['int8_f1_delta']:>6.3f} {row['pq_f1_delta']:>6.3f}"
        )
    print(
        f"\n  totals: disk int8 {payload['int8_disk_compression']:.1f}x / "
        f"pq {payload['pq_disk_compression']:.1f}x, "
        f"warm int8 {payload['int8_warm_compression']:.1f}x / "
        f"pq {payload['pq_warm_compression']:.1f}x, "
        f"min recall int8 {payload['int8_min_recall']:.3f} / "
        f"pq {payload['pq_min_recall']:.3f}, "
        f"max F1 delta int8 {payload['int8_max_f1_delta']:.3f} / "
        f"pq {payload['pq_max_f1_delta']:.3f}, "
        f"peak RSS {payload['peak_rss_bytes']}"
    )

    assert payload["int8_disk_compression"] >= MIN_COMPRESSION, (
        f"int8 disk compression {payload['int8_disk_compression']:.2f}x below {MIN_COMPRESSION}x"
    )
    assert payload["int8_warm_compression"] >= MIN_COMPRESSION, (
        f"int8 warm-load compression {payload['int8_warm_compression']:.2f}x below {MIN_COMPRESSION}x"
    )
    assert payload["pq_disk_compression"] >= MIN_PQ_COMPRESSION, (
        f"pq disk compression {payload['pq_disk_compression']:.2f}x below {MIN_PQ_COMPRESSION}x"
    )
    assert payload["pq_warm_compression"] >= MIN_PQ_WARM_COMPRESSION, (
        f"pq warm-load compression {payload['pq_warm_compression']:.2f}x "
        f"below {MIN_PQ_WARM_COMPRESSION}x"
    )
    for name, row in per_domain.items():
        for codec in QUANT_CODECS:
            assert row[f"{codec}_blocking_recall_vs_exact"] >= MIN_RECALL, (
                f"{name}: {codec} blocking recall "
                f"{row[f'{codec}_blocking_recall_vs_exact']:.3f} below pinned {MIN_RECALL}"
            )
            assert row[f"{codec}_f1_delta"] <= MAX_F1_DELTA, (
                f"{name}: {codec} gold-F1 delta {row[f'{codec}_f1_delta']:.3f} "
                f"above pinned {MAX_F1_DELTA}"
            )
