"""Table II — dataset inventory.

Regenerates the dataset-statistics table: per domain, the two-table
cardinalities, arity, and train/test pair-set sizes, alongside the figures
the paper reports (kept in each spec's ``paper_stats``).  The benchmark times
dataset generation itself, which is the substrate substituted for the
DeepMatcher benchmark downloads.
"""

from __future__ import annotations

from repro.data.generators import DOMAIN_NAMES, load_domain
from repro.eval.reporting import format_table

from benchmarks.conftest import bench_scale


def _dataset_rows(domains):
    rows = []
    for name in DOMAIN_NAMES:
        domain = domains[name]
        stats = domain.spec.paper_stats
        rows.append([
            name,
            f"{domain.task.cardinality[0]}/{domain.task.cardinality[1]}",
            str(domain.task.arity),
            str(len(domain.splits.train)),
            str(len(domain.splits.test)),
            "clean" if domain.task.clean else "noisy",
            f"{stats.cardinality[0]}/{stats.cardinality[1]}",
            str(stats.training),
            str(stats.test),
        ])
    return rows


def test_table2_dataset_statistics(benchmark, all_domains):
    """Generate one domain under the benchmark timer and print Table II."""
    benchmark(lambda: load_domain("restaurants", scale=bench_scale()))

    headers = [
        "Domain", "Card.", "Arity", "Train", "Test", "Kind",
        "Paper card.", "Paper train", "Paper test",
    ]
    print("\n\nTable II — datasets (this repo vs the paper)\n")
    print(format_table(headers, _dataset_rows(all_domains)))

    # The reproduction must preserve the schema shape of every domain.
    for name in DOMAIN_NAMES:
        domain = all_domains[name]
        assert domain.task.arity == domain.spec.paper_stats.arity
        assert len(domain.splits.train) > 0 and len(domain.splits.test) > 0
        assert domain.splits.train.num_positives() > 0
