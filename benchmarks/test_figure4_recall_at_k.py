"""Figure 4 — VAER-LSA recall@K as K increases.

The paper shows that the domains whose recall@10 is not already near 1.0
recover most missed duplicates as K grows.  This benchmark reproduces the
curve on the benchmark domains and asserts its monotonicity and its growth
on the hardest domain.
"""

from __future__ import annotations

from repro.eval.harness import fit_representation, recall_at_k_experiment
from repro.eval.reporting import format_recall_curve

KS = (10, 20, 30, 50)


def test_figure4_recall_at_k_curve(benchmark, domains, harness_config):
    curves = {}
    models = {}
    for name, domain in domains.items():
        models[name], _ = fit_representation(domain, harness_config, ir_method="lsa")
        curves[name] = recall_at_k_experiment(
            domain, harness_config, ks=KS, representation=models[name]
        )

    benchmark(
        lambda: recall_at_k_experiment(
            domains["restaurants"], harness_config, ks=(10,), representation=models["restaurants"]
        )
    )

    print("\n\nFigure 4 — VAER-LSA recall@K as K increases\n")
    print(format_recall_curve(curves))

    for name, curve in curves.items():
        values = [curve[k] for k in KS]
        # Recall@K is non-decreasing in K by construction of top-K retrieval.
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:])), name
    # The paper's point: raising K helps the domains that start below 1.0.
    hardest = min(curves, key=lambda n: curves[n][10])
    assert curves[hardest][50] >= curves[hardest][10]
