"""Delta scaling micro-benchmark — append cost tracks delta size, not table size.

One curve, emitted as ``BENCH_delta.json`` so CI can track it: a table is
resolved cold (capturing a baseline), then grown by successively larger
appends, each followed by an incremental re-resolve through the delta engine
against a warm chunked cache.  For every append the benchmark records the
encode work actually paid (``rows_reencoded``, ``tables_encoded``), the
matcher work (``pairs_rescored`` vs total candidates) and wall clock.

Correctness gates (the benchmark fails on divergence, not on slowness —
CI runners are too noisy for hard speedup thresholds on small tables):

* every incremental step re-encodes exactly the appended rows and zero
  whole tables — the content-addressed chunk reuse contract;
* the final incremental stream matches a cold full resolve of the fully
  grown table (identical candidate stream and match set), and that cold run
  does strictly *more* encode operations than all warm appends combined.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.config import BlockingConfig
from repro.data.generators import append_rows
from repro.engine import (
    PersistentEncodingCache,
    ShardedEncodingStore,
    merge_scored_batches,
    resolve_delta,
    resolve_stream,
)
from repro.eval.harness import fit_representation
from repro.eval.timing import EngineCounters, StageTimings

from benchmarks.conftest import bench_scale
from repro.data.generators import load_domain

TOP_K = 10
BATCH_SIZE = 512
CHUNK_ROWS = 64
#: Successive appends to the right table, in rows.  The spread is what shows
#: cost scaling with the delta, not the (growing) table.
DELTA_SWEEP = (16, 64, 256)


class _DistanceMatcher:
    """Deterministic elementwise matcher stand-in (no training cost)."""

    def predict_proba(self, left_irs: np.ndarray, right_irs: np.ndarray) -> np.ndarray:
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


def test_delta_scaling(harness_config):
    # A private domain instance: append_rows mutates it, so the shared
    # session fixture must not be used here.
    domain = load_domain("restaurants", scale=bench_scale())
    representation, _ = fit_representation(domain, harness_config)
    matcher = _DistanceMatcher()
    blocking = BlockingConfig(seed=harness_config.seed)

    with tempfile.TemporaryDirectory(prefix="delta-bench-cache") as tmp:
        cache = PersistentEncodingCache(Path(tmp), chunk_rows=CHUNK_ROWS)
        store = ShardedEncodingStore(
            representation, domain.task,
            counters=EngineCounters(), persistent=cache, shard_rows=CHUNK_ROWS,
        )

        start = time.perf_counter()
        executor = resolve_delta(
            store, matcher, baseline=None, blocking=blocking, k=TOP_K, batch_size=BATCH_SIZE
        )
        merge_scored_batches(executor.run())
        cold_seconds = time.perf_counter() - start
        baseline = executor.baseline_out
        base_left, base_right = len(domain.task.left), len(domain.task.right)
        assert store.counters.tables_encoded == 2

        steps = []
        for delta_rows in DELTA_SWEEP:
            append_rows(domain, side="right", rows=delta_rows)
            rows_before = store.counters.rows_reencoded
            tables_before = store.counters.tables_encoded
            rescored_before = store.counters.pairs_rescored
            timings = StageTimings()
            start = time.perf_counter()
            executor = resolve_delta(
                store, matcher, baseline=baseline, blocking=blocking,
                k=TOP_K, batch_size=BATCH_SIZE, stage_timings=timings,
            )
            scored = merge_scored_batches(executor.run())
            seconds = time.perf_counter() - start
            baseline = executor.baseline_out

            rows_reencoded = store.counters.rows_reencoded - rows_before
            assert store.counters.tables_encoded == tables_before, (
                f"append of {delta_rows} rows must not re-encode a whole table"
            )
            assert rows_reencoded == delta_rows, (
                f"append of {delta_rows} rows re-encoded {rows_reencoded}"
            )
            steps.append({
                "appended_rows": delta_rows,
                "right_rows_after": len(domain.task.right),
                "seconds": seconds,
                "rows_reencoded": rows_reencoded,
                "tables_encoded": 0,
                "pairs_rescored": store.counters.pairs_rescored - rescored_before,
                "candidate_pairs": len(scored),
                "encode_seconds": timings.seconds("encode"),
                "block_extend_seconds": timings.seconds("block-extend"),
            })
        warm = scored

        # Cold reference on the fully grown table: a fresh store with a cold
        # cache must encode both whole tables from scratch.
        cold_store = ShardedEncodingStore(
            representation, domain.task, counters=EngineCounters(), shard_rows=CHUNK_ROWS
        )
        start = time.perf_counter()
        cold = merge_scored_batches(
            resolve_stream(cold_store, matcher, blocking=blocking, k=TOP_K, batch_size=BATCH_SIZE)
        )
        cold_grown_seconds = time.perf_counter() - start
        cold_rows_encoded = len(domain.task.left) + len(domain.task.right)
        warm_rows_encoded = sum(step["rows_reencoded"] for step in steps)

        # The acceptance gate: warm append resolves do strictly fewer encode
        # operations than the cold run on the same grown table.
        assert cold_store.counters.tables_encoded == 2
        assert warm_rows_encoded < cold_rows_encoded, (
            f"warm appends encoded {warm_rows_encoded} rows, "
            f"cold run encoded {cold_rows_encoded}"
        )
        # Equivalence gate on the final state.
        assert [p.key() for p in warm.pairs] == [p.key() for p in cold.pairs]
        assert {p.key() for p in warm.matches()} == {p.key() for p in cold.matches()}

    payload = {
        "domain": domain.name,
        "k": TOP_K,
        "batch_size": BATCH_SIZE,
        "chunk_rows": CHUNK_ROWS,
        "base_rows": {"left": base_left, "right": base_right},
        "cold_base_seconds": cold_seconds,
        "steps": steps,
        "cold_grown": {
            "seconds": cold_grown_seconds,
            "rows_encoded": cold_rows_encoded,
            "tables_encoded": 2,
        },
        "warm_rows_encoded_total": warm_rows_encoded,
    }
    Path("BENCH_delta.json").write_text(json.dumps(payload, indent=2) + "\n")

    print("\n\nDelta scaling — append cost vs delta size\n")
    print(f"  domain           : {domain.name} (base {base_left}x{base_right} rows)")
    print(f"  cold base resolve: {cold_seconds:.3f}s (2 tables encoded)")
    for step in steps:
        print(f"  append +{step['appended_rows']:4d}     : {step['seconds']:.3f}s — "
              f"{step['rows_reencoded']} rows re-encoded, 0 tables, "
              f"{step['pairs_rescored']}/{step['candidate_pairs']} pairs rescored")
    print(f"  cold grown run   : {cold_grown_seconds:.3f}s — "
          f"{cold_rows_encoded} rows ({payload['cold_grown']['tables_encoded']} tables) encoded "
          f"vs {warm_rows_encoded} across all warm appends")
