"""Shard scaling micro-benchmark — worker sweep and warm-vs-cold cache.

Resolves one benchmark domain end to end through the sharded engine at 1, 2
and 4 workers (same representation, same matcher, warm persistent cache) and
measures the cold-vs-warm cost of the persistent encoding cache.  Emits
``BENCH_shard.json`` so CI can track both curves.

Correctness gates (the benchmark fails on divergence, not on slowness —
CI runners are too noisy for hard speedup thresholds on small tables):

* every worker count must produce the identical match set;
* the warm cache run must encode zero tables and hit disk for both sides.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.matcher import fit_matcher_with_threshold
from repro.eval.harness import fit_representation, resolution_experiment
from repro.eval.reporting import format_engine_stats, format_shard_timings
from repro.eval.timing import EngineCounters

WORKER_SWEEP = (1, 2, 4)
BATCH_SIZE = 256


def test_shard_scaling(domains, harness_config, tmp_path_factory):
    domain = domains["restaurants"]
    representation, _ = fit_representation(domain, harness_config)
    matcher, threshold = fit_matcher_with_threshold(
        representation,
        domain.task,
        domain.splits.train,
        domain.splits.validation,
        config=harness_config.matcher_config(),
    )

    cache_dir = tmp_path_factory.mktemp("shard-bench-cache")

    def run(workers: int):
        return resolution_experiment(
            domain, harness_config, workers=workers, batch_size=BATCH_SIZE,
            cache_dir=str(cache_dir), representation=representation,
            matcher=matcher, threshold=threshold,
        )

    # Cold: empty cache directory — both tables encoded and written to disk.
    cold_start = time.perf_counter()
    cold = run(workers=1)
    cold_seconds = time.perf_counter() - cold_start
    assert cold.counters["tables_encoded"] == 2
    assert cold.counters["disk_misses"] == 2

    # Warm: same directory — zero encodes, both sides served from disk.
    warm_start = time.perf_counter()
    warm = run(workers=1)
    warm_seconds = time.perf_counter() - warm_start
    assert warm.counters["tables_encoded"] == 0, "warm cache must skip all table encoding"
    assert warm.counters["disk_hits"] == 2
    assert warm.match_keys == cold.match_keys

    # Worker sweep over the warm cache: identical match sets, measured wall clock.
    sweep = {}
    for workers in WORKER_SWEEP:
        row = run(workers)
        assert row.counters["tables_encoded"] == 0
        assert row.match_keys == cold.match_keys, (
            f"workers={workers} diverged from the single-process match set"
        )
        sweep[workers] = row

    baseline = sweep[1].resolve_seconds
    payload = {
        "domain": domain.name,
        "batch_size": BATCH_SIZE,
        "candidate_pairs": cold.candidate_pairs,
        "predicted_matches": cold.predicted_matches,
        "cache": {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cold_counters": cold.counters,
            "warm_counters": warm.counters,
            "warm_tables_encoded": warm.counters["tables_encoded"],
        },
        "workers": {
            str(workers): {
                "resolve_seconds": row.resolve_seconds,
                "batches": row.batches,
                "speedup_vs_1": baseline / row.resolve_seconds if row.resolve_seconds > 0 else 0.0,
                "shard_seconds": row.shard_timings.as_rows(),
                "worker_compute_seconds": row.shard_timings.total_seconds(),
                "slowest_shard_seconds": row.shard_timings.max_seconds(),
            }
            for workers, row in sweep.items()
        },
    }
    Path("BENCH_shard.json").write_text(json.dumps(payload, indent=2) + "\n")

    print("\n\nShard scaling — worker sweep over a warm persistent cache\n")
    print(f"  domain           : {domain.name} ({cold.candidate_pairs} candidate pairs)")
    print(f"  cache cold/warm  : {cold_seconds:.2f}s / {warm_seconds:.2f}s "
          f"(warm encodes: {warm.counters['tables_encoded']})")
    for workers, row in sweep.items():
        print(f"  workers={workers}        : {row.resolve_seconds:.3f}s "
              f"({payload['workers'][str(workers)]['speedup_vs_1']:.2f}x vs 1 worker)")
    print("\nPer-shard timings (workers=%d)\n" % WORKER_SWEEP[-1])
    print(format_shard_timings(sweep[WORKER_SWEEP[-1]].shard_timings))
    print()
    counters = EngineCounters(**sweep[WORKER_SWEEP[-1]].counters)
    print(format_engine_stats(counters))
