"""Table III — hyper-parameters of VAER.

Asserts that the library defaults reproduce the configuration the paper
reports, and prints the table.  The benchmark times configuration
construction (trivially fast; included so every table has a bench target).
"""

from repro.config import VAERConfig
from repro.eval.reporting import format_table


def test_table3_hyperparameters(benchmark):
    config = benchmark(VAERConfig.paper_defaults)

    rows = [
        ["Repr. learning", "VAE hidden dimension", str(config.vae.hidden_dim), "200"],
        ["Repr. learning", "VAE latent dimension", str(config.vae.latent_dim), "100"],
        ["Matching", "Margin M", str(config.matcher.margin), "0.5"],
        ["AL", "Samples/iteration", str(config.active_learning.samples_per_iteration), "10"],
        ["AL", "Top neighbours K", str(config.active_learning.top_neighbours), "10"],
        ["Repr. & matching", "Optimizer", "Adam", "Adam"],
        ["Repr. & matching", "Learning rate", str(config.vae.learning_rate), "0.001"],
    ]
    print("\n\nTable III — hyperparameters (this repo vs the paper)\n")
    print(format_table(["Component", "Parameter", "Repo value", "Paper value"], rows))

    assert config.vae.hidden_dim == 200
    assert config.vae.latent_dim == 100
    assert config.matcher.margin == 0.5
    assert config.active_learning.samples_per_iteration == 10
    assert config.active_learning.top_neighbours == 10
    assert config.vae.learning_rate == 0.001
    assert config.matcher.learning_rate == 0.001
