"""Ablation benches for the design choices called out in DESIGN.md.

Not part of the paper's tables, but each ablates one decision the paper makes
and records whether the full design earns its keep on the synthetic workloads:

* Wasserstein vs Mahalanobis distance in the matcher (Section IV-A mentions
  both perform similarly);
* the contrastive term of Equation 4 on/off;
* the VAER AL sampler vs entropy-only vs random sampling (Section V);
* the KL weight of the VAE objective (beta), including the beta=0 plain
  auto-encoder.
"""

from __future__ import annotations

import numpy as np

from repro.eval.harness import (
    HarnessConfig,
    active_learning_experiment,
    fit_representation,
    recall_at_k_experiment,
    run_vaer_matching,
)
from repro.eval.reporting import format_table


def test_ablation_distance_metric(benchmark, domains, harness_config):
    """Wasserstein vs Mahalanobis in the Distance layer of the matcher."""
    domain = domains["restaurants"]
    representation, _ = fit_representation(domain, harness_config)
    rows = []
    scores = {}
    for distance in ("wasserstein", "mahalanobis"):
        row = run_vaer_matching(domain, harness_config, representation=representation, distance=distance)
        scores[distance] = row.metrics.f1
        rows.append([distance, f"{row.metrics.precision:.2f}", f"{row.metrics.recall:.2f}", f"{row.metrics.f1:.2f}"])

    benchmark(lambda: run_vaer_matching(
        domain, harness_config, representation=representation, distance="mahalanobis",
    ))

    print("\n\nAblation — matcher distance metric (restaurants)\n")
    print(format_table(["Distance", "P", "R", "F1"], rows))
    # The paper observes the two metrics behave similarly.
    assert abs(scores["wasserstein"] - scores["mahalanobis"]) < 0.3


def test_ablation_contrastive_term(benchmark, domains, harness_config):
    """Equation 4 with and without the contrastive (encoder fine-tuning) term."""
    domain = domains["citations1"]
    representation, _ = fit_representation(domain, harness_config)
    rows = []
    scores = {}
    for label, weight in (("with contrastive", 1.0), ("without contrastive", 0.0)):
        row = run_vaer_matching(
            domain, harness_config, representation=representation, contrastive_weight=weight,
        )
        scores[label] = row.metrics.f1
        rows.append([label, f"{row.metrics.f1:.2f}"])

    benchmark(lambda: run_vaer_matching(
        domain, harness_config, representation=representation, contrastive_weight=0.0,
    ))

    print("\n\nAblation — contrastive term of Equation 4 (citations1)\n")
    print(format_table(["Variant", "F1"], rows))
    # Dropping the term must not be catastrophic, and keeping it must not hurt
    # badly either; the full loss is the library default.
    assert scores["with contrastive"] >= scores["without contrastive"] - 0.2


def test_ablation_al_strategy(benchmark, domains, harness_config):
    """VAER sampler vs entropy-only vs random sampling at a fixed budget."""
    domain = domains["beer"]
    representation, _ = fit_representation(domain, harness_config)
    rows = []
    scores = {}
    for strategy in ("vaer", "entropy", "random"):
        result = active_learning_experiment(
            domain, harness_config, label_budget=40, iterations=8,
            strategy=strategy, representation=representation,
        )
        scores[strategy] = result.active.f1
        rows.append([strategy, f"{result.active.f1:.2f}", str(result.labels_used)])

    benchmark(lambda: active_learning_experiment(
        domain, harness_config, label_budget=10, iterations=1,
        strategy="random", representation=representation,
    ))

    print("\n\nAblation — AL sampling strategy at a 40-label budget (beer)\n")
    print(format_table(["Strategy", "F1", "Labels"], rows))
    # The paper's sampler must be competitive with the ablation baselines.
    assert scores["vaer"] >= max(scores["entropy"], scores["random"]) - 0.2


def test_ablation_kl_weight(benchmark, domains, harness_config):
    """Beta (KL weight) sweep for the VAE objective, including beta = 0."""
    domain = domains["cosmetics"]
    rows = []
    recalls = {}
    for beta in (0.0, 0.5, 1.0):
        config = HarnessConfig(
            ir_dim=harness_config.ir_dim,
            hidden_dim=harness_config.hidden_dim,
            latent_dim=harness_config.latent_dim,
            vae_epochs=harness_config.vae_epochs,
            matcher_epochs=harness_config.matcher_epochs,
            top_k=harness_config.top_k,
            seed=harness_config.seed,
        )
        vae_config = config.vae_config()
        vae_config.kl_weight = beta
        from repro.core.representation import EntityRepresentationModel

        representation = EntityRepresentationModel(vae_config, ir_method="lsa").fit(domain.task)
        recall = recall_at_k_experiment(domain, config, ks=(10,), representation=representation)[10]
        recalls[beta] = recall
        rows.append([f"beta={beta}", f"{recall:.2f}"])

    benchmark(lambda: recall_at_k_experiment(domain, harness_config, ks=(10,)))

    print("\n\nAblation — KL weight of the VAE objective, recall@10 (cosmetics)\n")
    print(format_table(["KL weight", "Recall@10"], rows))
    # The variational model (beta > 0) must stay competitive with the plain
    # auto-encoder; none of the settings should collapse retrieval.
    assert recalls[1.0] >= recalls[0.0] - 0.2
    assert all(value > 0.2 for value in recalls.values())
