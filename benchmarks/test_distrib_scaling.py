"""Distributed resolution benchmark — determinism gate and worker scaling.

Two halves, emitted together as ``BENCH_distrib.json``:

* **Determinism gate** (always enforced): every registry domain is resolved
  serially and through the coordinator/worker runner at 2 and 4 workers
  (real :class:`repro.distrib.Worker` loops over the file-lease queue); the
  distributed match stream must be byte-identical — same batch order, same
  pair keys, same probability bytes.  One domain additionally runs with a
  worker that abandons its first claimed unit mid-run, so the lease-expiry
  re-dispatch path is part of the gate, not just the happy path.
* **Scaling sweep**: one scaled-up domain with a deliberately compute-heavy
  (but deterministic, batch-composition-independent) scorer is resolved at
  1, 2 and 4 workers — workers are *separate* ``python -m repro worker``
  subprocesses sharing only the queue directory and encoding cache — and
  the wall clock plus the coordinator's dispatch/lease/merge stage seconds
  and re-dispatch counters are recorded per worker count.  ``workers=1``
  is the serial in-process reference (the engine's documented degenerate
  case).

Performance gates arm only under ``REPRO_BENCH_REQUIRE_SPEEDUP`` (hosted
multi-core runners): the 4-worker distributed run must not be slower than
the serial reference.  ``REPRO_BENCH_SCALE`` multiplies both halves' row
counts.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import bench_scale
from repro.config import VAEConfig
from repro.core.pipeline import VAER
from repro.core.representation import EntityRepresentationModel
from repro.data.generators import DOMAIN_NAMES, load_domain
from repro.distrib import FileLeaseQueue, Worker
from repro.eval.timing import StageTimings

REQUIRE_SPEEDUP = bool(os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP", "").strip())

#: Domain that runs the worker-kill variant inside the determinism gate.
KILL_DOMAIN = "beer"

#: Domain and scale multiplier for the subprocess scaling sweep.
SWEEP_DOMAIN = "music"
SWEEP_SCALE = 2.0
WORKER_SWEEP = (1, 2, 4)

#: Iterations of the heavy scorer's elementwise loop — sized so the serial
#: sweep reference runs for several seconds and one score batch carries
#: enough compute to amortize queue-transport and worker-startup overheads.
HEAVY_ROUNDS = 6000


class DistanceMatcher:
    """Elementwise deterministic scorer: batch-composition independent."""

    def predict_proba(self, left_irs, right_irs):
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


class HeavyMatcher:
    """Deterministic scorer with a tunable compute cost.

    Every operation is elementwise over the pair axis, so probabilities are
    independent of batch composition (exact equality across worker counts)
    while each score batch costs real CPU — the shape that makes
    distribution worthwhile.  Picklable by reference from the
    ``benchmarks`` package, so subprocess workers can execute it.
    """

    def predict_proba(self, left_irs, right_irs):
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        x = diffs
        for _ in range(HEAVY_ROUNDS):
            x = np.tanh(x * 1.0009) + 1e-7 * np.square(diffs)
        distances = np.sqrt((x ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


class AbandonOnceWorker(Worker):
    """Claims its first unit and never completes it — a crashed worker."""

    def __init__(self, queue, **kwargs):
        super().__init__(queue, **kwargs)
        self.abandoned = False

    def execute(self, unit):
        if not self.abandoned:
            self.abandoned = True
            return
        super().execute(unit)


def _build_model(name: str, scale: float, matcher, cache_dir=None) -> VAER:
    domain = load_domain(name, scale=scale)
    model = VAER(cache_dir=cache_dir)
    model.representation = EntityRepresentationModel(
        VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=1, seed=7),
        ir_method="lsa",
    ).fit(domain.task)
    model.task = domain.task
    model.matcher = matcher
    return model


def _start_thread_workers(queue_dir, count, worker_cls=Worker):
    stop = threading.Event()
    workers, threads = [], []
    for _ in range(count):
        worker = worker_cls(FileLeaseQueue(queue_dir), poll_interval=0.01)
        thread = threading.Thread(target=worker.run, args=(stop,), daemon=True)
        thread.start()
        workers.append(worker)
        threads.append(thread)

    def _stop():
        stop.set()
        for thread in threads:
            thread.join(timeout=10)

    return workers, _stop


def _identical(serial, distributed) -> bool:
    if [b.batch_index for b in serial] != [b.batch_index for b in distributed]:
        return False
    for left, right in zip(serial, distributed):
        if [p.key() for p in left.pairs] != [p.key() for p in right.pairs]:
            return False
        if not np.array_equal(left.probabilities, right.probabilities):
            return False
    return True


def _spawn_worker_processes(queue_dir: Path, count: int):
    repo_root = Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    src = str(repo_root / "src")
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    processes = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--queue-dir", str(queue_dir), "--poll-interval", "0.01"],
            cwd=str(repo_root), env=env,
        )
        for _ in range(count)
    ]

    def _stop():
        for process in processes:
            process.terminate()
        for process in processes:
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                process.kill()

    return processes, _stop


def test_distrib_determinism_and_scaling(tmp_path):
    scale = 0.25 * bench_scale()
    k, batch_size = 8, 128

    # ------------------------------------------------------------------
    # Half 1: determinism gate over every registry domain.
    # ------------------------------------------------------------------
    domain_reports = {}
    for name in DOMAIN_NAMES:
        model = _build_model(name, scale, DistanceMatcher())
        serial = list(model.resolve_stream(k=k, batch_size=batch_size))
        report = {"workers": {}, "worker_kill": False}
        for workers in (2, 4):
            queue_dir = tmp_path / "gate" / name / f"w{workers}"
            kill_run = name == KILL_DOMAIN and workers == 2
            if kill_run:
                killed, stop_killed = _start_thread_workers(
                    queue_dir, 1, worker_cls=AbandonOnceWorker
                )
                live, stop_live = _start_thread_workers(queue_dir, workers)
            else:
                live, stop_live = _start_thread_workers(queue_dir, workers)
            stage = StageTimings()
            try:
                distributed = list(model.resolve_distributed(
                    workers=workers, queue_dir=queue_dir, k=k,
                    batch_size=batch_size, stage_timings=stage,
                    lease_timeout=0.5 if kill_run else None,
                ))
            finally:
                stop_live()
                if kill_run:
                    stop_killed()
            identical = _identical(serial, distributed)
            report["workers"][str(workers)] = {
                "identical": identical,
                "units_dispatched": stage.counter("units_dispatched"),
                "units_redispatched": stage.counter("units_redispatched"),
            }
            if kill_run:
                report["worker_kill"] = True
                assert killed[0].abandoned, f"{name}: kill variant never claimed a unit"
                assert stage.counter("units_redispatched") >= 1, (
                    f"{name}: abandoned unit was not re-dispatched"
                )
            assert identical, (
                f"{name}: distributed ({workers} workers) diverged from serial"
            )
        domain_reports[name] = report
    assert any(r["worker_kill"] for r in domain_reports.values())

    # ------------------------------------------------------------------
    # Half 2: subprocess scaling sweep with the heavy scorer.
    # ------------------------------------------------------------------
    sweep_scale = SWEEP_SCALE * bench_scale()
    cache_dir = tmp_path / "sweep-cache"
    model = _build_model(
        SWEEP_DOMAIN, sweep_scale, HeavyMatcher(), cache_dir=str(cache_dir)
    )
    # Warm the shared cache once so every sweep point (and every worker)
    # attaches the same encodings instead of re-encoding.
    model.store.table_encodings("left")
    model.store.table_encodings("right")

    started = time.perf_counter()
    serial = list(model.resolve_stream(k=k, batch_size=batch_size))
    serial_seconds = time.perf_counter() - started

    runs = [{
        "workers": 1, "transport": "serial", "wall_seconds": serial_seconds,
        "dispatch_seconds": 0.0, "lease_seconds": 0.0, "merge_seconds": 0.0,
        "units_dispatched": 0, "units_redispatched": 0,
    }]
    for workers in WORKER_SWEEP[1:]:
        queue_dir = tmp_path / "sweep" / f"w{workers}"
        queue_dir.mkdir(parents=True)
        _, stop = _spawn_worker_processes(queue_dir, workers)
        stage = StageTimings()
        try:
            started = time.perf_counter()
            distributed = list(model.resolve_distributed(
                workers=workers, queue_dir=queue_dir, k=k,
                batch_size=batch_size, stage_timings=stage,
            ))
            wall = time.perf_counter() - started
        finally:
            stop()
        assert _identical(serial, distributed), (
            f"sweep: distributed ({workers} subprocess workers) diverged from serial"
        )
        runs.append({
            "workers": workers, "transport": "file-queue", "wall_seconds": wall,
            "dispatch_seconds": stage.seconds("dispatch"),
            "lease_seconds": stage.seconds("lease"),
            "merge_seconds": stage.seconds("merge"),
            "units_dispatched": stage.counter("units_dispatched"),
            "units_redispatched": stage.counter("units_redispatched"),
        })

    task = model.task
    payload = {
        "scale": scale,
        "sweep_scale": sweep_scale,
        "k": k,
        "batch_size": batch_size,
        "require_speedup": REQUIRE_SPEEDUP,
        "domains": domain_reports,
        "sweep": {
            "domain": SWEEP_DOMAIN,
            "rows": [len(task.left), len(task.right)],
            "heavy_rounds": HEAVY_ROUNDS,
            "runs": runs,
        },
    }
    Path("BENCH_distrib.json").write_text(json.dumps(payload, indent=2) + "\n")

    print("\nDistributed scaling sweep "
          f"({SWEEP_DOMAIN}, {len(task.left)}x{len(task.right)} rows)\n")
    for run in runs:
        print(
            f"  workers={run['workers']} ({run['transport']}): "
            f"{run['wall_seconds']:.3f}s wall, "
            f"dispatch {run['dispatch_seconds']:.3f}s, "
            f"lease {run['lease_seconds']:.3f}s, "
            f"merge {run['merge_seconds']:.3f}s, "
            f"{run['units_dispatched']} units "
            f"({run['units_redispatched']} re-dispatched)"
        )

    if REQUIRE_SPEEDUP:
        four = next(run for run in runs if run["workers"] == 4)
        assert four["wall_seconds"] <= serial_seconds, (
            f"4-worker distributed run ({four['wall_seconds']:.3f}s) slower than "
            f"serial ({serial_seconds:.3f}s) with REPRO_BENCH_REQUIRE_SPEEDUP set"
        )
