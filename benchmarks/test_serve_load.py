"""Serving-path load bench: point-query latency and sustained mixed QPS.

Boots the real daemon stack (ServeSession + MatchServer over loopback HTTP,
queried through MatchClient) and drives mixed traffic — point resolves,
probe-record queries, and edit/delete/ingest mutations — recording p50/p99
latency per request type and the sustained throughput of the mix.

The run repeats at two table scales to evidence the acceptance criterion
that the warm path's per-request cost is independent of table size: a point
resolve is one atomic snapshot read plus an O(1) per-left-id lookup, so its
latency must not grow with the table.  The scale ratio is always emitted in
``BENCH_serve.json``; it only becomes a hard assertion when
``REPRO_BENCH_REQUIRE_SPEEDUP`` is set (shared CI runners are too noisy to
gate merges on wall-clock by default).

Knobs: ``REPRO_BENCH_SCALE`` multiplies the request counts (default 1.0).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.config import VAEConfig
from repro.core.pipeline import VAER
from repro.core.representation import EntityRepresentationModel
from repro.data.generators import load_domain
from repro.serve import MatchClient, MatchServer, ServeSession, record_payload

DOMAIN = "restaurants"
SCALES = {"small": 0.2, "large": 0.6}
K = 4
BATCH = 256
REQUIRE_INDEPENDENCE = bool(os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP", "").strip())


def _request_scale() -> float:
    raw = os.environ.get("REPRO_BENCH_SCALE", "").strip()
    try:
        return max(0.1, float(raw)) if raw else 1.0
    except ValueError:
        return 1.0


POINT_REQUESTS = int(120 * _request_scale())
PROBE_REQUESTS = int(20 * _request_scale())
MUTATIONS = int(12 * _request_scale())


class _DistanceMatcher:
    """Elementwise matcher: deterministic, batch-composition independent."""

    def predict_proba(self, left_irs, right_irs):
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


def _served_model(scale: float):
    domain = load_domain(DOMAIN, scale=scale)
    model = VAER()
    model.representation = EntityRepresentationModel(
        VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=7),
        ir_method="lsa",
    ).fit(domain.task)
    model.task = domain.task
    model.matcher = _DistanceMatcher()
    return domain, model


def _percentiles(samples):
    values = np.asarray(samples) * 1e3  # milliseconds
    return {
        "requests": len(samples),
        "p50_ms": float(np.percentile(values, 50)),
        "p99_ms": float(np.percentile(values, 99)),
        "mean_ms": float(values.mean()),
    }


def _drive_mixed_traffic(domain, client):
    """The mixed query/edit/delete phase; returns (per-type latencies, QPS)."""
    right = domain.task.right
    left_ids = domain.task.left.record_ids()
    template = right.records()[0]
    alive = list(right.record_ids())
    latencies = {"point": [], "probe": [], "mutate": []}

    # One request of each type to warm connections and code paths.
    client.resolve([left_ids[0]])
    client.query([record_payload("warm-probe", template.values)], k=K)
    client.mutate(ingest=[record_payload("warm-ingest", template.values)])

    schedule = (
        [("point", i) for i in range(POINT_REQUESTS)]
        + [("probe", i) for i in range(PROBE_REQUESTS)]
        + [("mutate", i) for i in range(MUTATIONS)]
    )
    # Deterministic interleave: spread the rare types through the common one.
    schedule.sort(key=lambda entry: hash((entry[0], entry[1] * 7919)) % 100003)

    started = time.perf_counter()
    for kind, i in schedule:
        begin = time.perf_counter()
        if kind == "point":
            client.resolve([left_ids[i % len(left_ids)]])
        elif kind == "probe":
            source = right.records()[i % len(right)]
            client.query([record_payload(f"probe-{i}", source.values)], k=K)
        else:
            step = i % 3
            if step == 0:
                target = right[alive[i % len(alive)]]
                client.mutate(edit=[record_payload(
                    target.record_id, [f"m{i}-{value}" for value in target.values]
                )])
            elif step == 1:
                victim = alive.pop(i % len(alive))
                client.mutate(delete=[victim])
            else:
                client.mutate(ingest=[record_payload(f"bench-{i}", template.values)])
        latencies[kind].append(time.perf_counter() - begin)
    elapsed = time.perf_counter() - started
    return latencies, len(schedule) / elapsed


def test_serve_mixed_load_latency_and_qps():
    results = {}
    for label, scale in SCALES.items():
        domain, model = _served_model(scale)
        session = ServeSession(model, k=K, batch_size=BATCH).start()
        server = MatchServer(session).start()
        try:
            client = MatchClient(server.url)
            warm_started = time.perf_counter()
            health = client.health()
            assert health["status"] == "ok" and health["pairs"] > 0
            latencies, qps = _drive_mixed_traffic(domain, client)
            stats = client.stats()
            results[label] = {
                "scale": scale,
                "left_rows": health["left_rows"],
                "right_rows": health["right_rows"],
                "candidate_pairs": health["pairs"],
                "sustained_qps": qps,
                "first_request_seconds": time.perf_counter() - warm_started,
                "mutations_applied": stats["mutations_applied"],
                "point_query": _percentiles(latencies["point"]),
                "probe_query": _percentiles(latencies["probe"]),
                "mutation": _percentiles(latencies["mutate"]),
            }
            assert stats["mutations_applied"] == MUTATIONS + 1  # + the warm-up
            assert stats["generation"] == MUTATIONS + 1
        finally:
            server.shutdown()

    ratio = (
        results["large"]["point_query"]["p50_ms"]
        / results["small"]["point_query"]["p50_ms"]
    )
    payload = {
        "domain": DOMAIN,
        "k": K,
        "batch_size": BATCH,
        "traffic": {
            "point_requests": POINT_REQUESTS,
            "probe_requests": PROBE_REQUESTS,
            "mutations": MUTATIONS,
        },
        "sizes": results,
        "point_query_p50_scale_ratio": ratio,
        "table_size_independent": ratio < 3.0,
    }
    Path("BENCH_serve.json").write_text(json.dumps(payload, indent=2) + "\n")

    print("\n\nServing load — mixed point/probe/mutation traffic\n")
    for label, row in results.items():
        print(
            f"  {label:<6} ({row['left_rows']}x{row['right_rows']} rows, "
            f"{row['candidate_pairs']} pairs): "
            f"point p50 {row['point_query']['p50_ms']:.2f}ms "
            f"p99 {row['point_query']['p99_ms']:.2f}ms; "
            f"probe p50 {row['probe_query']['p50_ms']:.2f}ms; "
            f"mutation p50 {row['mutation']['p50_ms']:.2f}ms; "
            f"{row['sustained_qps']:.0f} req/s sustained"
        )
    print(f"  point-query p50 large/small ratio: {ratio:.2f}")

    # The warm path must stay interactive and productive at every size.
    for row in results.values():
        assert row["sustained_qps"] > 5
        assert row["point_query"]["p50_ms"] < 1000
    if REQUIRE_INDEPENDENCE:
        assert ratio < 3.0, "point-query latency must not track table size"
