"""Table VI — training times.

Reports the wall-clock cost of VAER's representation and matching training
against the end-to-end baselines.  Expected shape (paper): VAER's *matching*
step is much cheaper than training any baseline end to end (that is what
makes iterative active learning affordable); representation training is a
one-off cost dominated by table size and is reusable across tasks
(Table VII).  Absolute numbers differ from the paper's GPU setting.
"""

from __future__ import annotations

import numpy as np

from repro.eval.harness import run_vaer_matching
from repro.eval.reporting import format_timing_table

from benchmarks.test_table5_matching import compute_matching_results


def test_table6_training_times(benchmark, domains, harness_config):
    results = compute_matching_results(domains, harness_config)

    benchmark(lambda: run_vaer_matching(domains["restaurants"], harness_config))

    print("\n\nTable VI — training times in seconds (repr + matching)\n")
    print(format_timing_table(results))

    vaer_matching = np.array([rows[0].matching_seconds for rows in results.values()])
    baseline_times = np.array([
        np.mean([row.matching_seconds for row in rows[1:]]) for rows in results.values()
    ])
    # Shape check: averaged over domains, VAER's matcher trains faster than
    # the average end-to-end baseline.
    assert vaer_matching.mean() < baseline_times.mean()
    # All timings must be real measurements.
    assert (vaer_matching > 0).all() and (baseline_times > 0).all()
