"""Table VIII — active learning labeling-cost reduction.

For every benchmark domain, compares three matchers built on the same
representation model:

* **Bootstrap** — trained only on the automatic seed labels of Algorithm 1;
* **Active** — trained through Algorithm 2 with a fixed labeling budget
  (the paper's "A250", scaled to the reduced synthetic training sets);
* **Full** — trained on the complete given training split.

Expected shape (paper): the actively trained matcher recovers most of the
Full model's F1 (the paper reports 71-103 %) while using a fraction of the
labels, and improves on (or at least matches) the Bootstrap model.
"""

from __future__ import annotations

import numpy as np

from repro.eval.harness import active_learning_experiment, fit_representation
from repro.eval.reporting import format_active_learning_table, format_f1_trace

#: Scaled-down counterpart of the paper's 250 actively labeled samples.
LABEL_BUDGET = 60

#: Shared with the Figure 5 benchmark.
_ROWS_CACHE = {}


def compute_al_rows(domains, harness_config):
    if not _ROWS_CACHE:
        for name, domain in domains.items():
            representation, _ = fit_representation(domain, harness_config, ir_method="lsa")
            _ROWS_CACHE[name] = active_learning_experiment(
                domain,
                harness_config,
                label_budget=LABEL_BUDGET,
                iterations=12,
                representation=representation,
            )
    return _ROWS_CACHE


def test_table8_active_learning(benchmark, domains, harness_config):
    rows_by_domain = compute_al_rows(domains, harness_config)
    rows = list(rows_by_domain.values())

    benchmark(lambda: active_learning_experiment(
        domains["restaurants"], harness_config, label_budget=20, iterations=2,
    ))

    print(f"\n\nTable VIII — active learning (budget = {LABEL_BUDGET} labels)\n")
    print(format_active_learning_table(rows))
    print("\nFigure 5 data — F1 vs actively labeled samples\n")
    print(format_f1_trace({row.domain: row.f1_trace for row in rows}))

    f1_percentages = np.array([row.f1_percentage for row in rows])
    training_percentages = np.array([row.training_percentage for row in rows])
    # Shape checks mirroring the paper's conclusions:
    # (1) the actively trained matcher recovers most of the Full model's F1;
    assert f1_percentages.mean() >= 0.7
    # (2) it does so with a proper subset of the full training labels;
    assert (training_percentages <= 1.0).all()
    assert np.mean([row.labels_used for row in rows]) < np.mean([row.full_training_size for row in rows])
    # (3) active learning does not end below its own bootstrap seed.
    for row in rows:
        assert row.active.f1 >= row.bootstrap.f1 - 0.1, row.domain
