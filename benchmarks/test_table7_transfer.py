"""Table VII — transferability of the representation model.

A VAER-LSA representation model is trained on the Citations 2 domain (the
paper's source) and transferred to the other benchmark domains, arity-adapted
to the source schema.  Recall@K and matching F1 with the transferred model
are compared against locally trained representation models.

Expected shape (paper): the transferred model loses at most a few points of
recall/F1 relative to the local one, while paying zero representation
training time on the target domain.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import load_domain
from repro.eval.harness import transfer_experiment
from repro.eval.reporting import format_transfer_table

from benchmarks.conftest import bench_scale


def test_table7_transferability(benchmark, domains, harness_config):
    source = load_domain("citations2", scale=bench_scale())
    targets = [domain for name, domain in domains.items() if name != "citations2"]

    rows = transfer_experiment(source, targets, harness_config)

    benchmark(lambda: transfer_experiment(source, targets[:1], harness_config))

    print("\n\nTable VII — local vs transferred representation model (source: citations2)\n")
    print(format_transfer_table(rows))

    recall_deltas = np.array([row.recall_delta for row in rows])
    f1_deltas = np.array([row.f1_delta for row in rows])
    # Shape check: transferring costs little — the average drop stays small
    # and no domain collapses.
    assert recall_deltas.mean() >= -0.15
    assert f1_deltas.mean() >= -0.15
    assert all(row.transferred_recall > 0.2 for row in rows)
    assert all(row.transferred_f1 > 0.25 for row in rows)
