"""Engine micro-benchmark — pairs scored per second, old vs. new path.

Compares the legacy per-pair Python loop (each candidate pair looked up and
scored individually, tables re-encoded on entry) against the batched encoding
engine (tables encoded once into the :class:`repro.engine.EncodingStore`,
pairs scored as one gather-then-reduce).  Emits ``BENCH_engine.json`` with
both rates so CI can track the speedup; the run fails if the engine is not at
least 5x faster than the loop baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.blocking.neighbours import NearestNeighbourSearch
from repro.core.active.sampler import _pair_latent_distances_loop
from repro.engine import EncodingStore
from repro.eval.harness import fit_representation
from repro.eval.reporting import format_engine_stats
from repro.eval.timing import EngineCounters

#: Cap on scored pairs so the legacy loop stays affordable in CI.
MAX_PAIRS = 2000
#: Timed repetitions of the batched path (it is fast enough to need them).
BATCHED_REPEATS = 5
#: Required advantage of the engine over the per-pair loop.
MIN_SPEEDUP = 5.0


def test_engine_throughput(domains, harness_config):
    domain = domains["restaurants"]
    representation, _ = fit_representation(domain, harness_config)

    counters = EngineCounters()
    store = EncodingStore(representation, domain.task, counters=counters)
    search = NearestNeighbourSearch.from_store(store)
    left = store.table_encodings("left")
    pairs = search.candidate_pairs(left.flat_mu(), left.keys, k=harness_config.top_k)[:MAX_PAIRS]
    assert len(pairs) >= 100, "benchmark needs a non-trivial candidate pool"

    # Old path: re-encode both tables, then walk the pairs one by one.
    start = time.perf_counter()
    legacy_distances = _pair_latent_distances_loop(domain.task, representation, pairs)
    legacy_seconds = time.perf_counter() - start

    # New path: tables already cached by blocking above; score via one gather.
    # First call outside the timer warms the cache like production steady state.
    batched_distances = store.pair_latent_distances(pairs)
    start = time.perf_counter()
    for _ in range(BATCHED_REPEATS):
        batched_distances = store.pair_latent_distances(pairs)
    batched_seconds = (time.perf_counter() - start) / BATCHED_REPEATS

    # The speedup must not come from computing something different.
    np.testing.assert_allclose(batched_distances, legacy_distances, atol=1e-8)

    legacy_rate = len(pairs) / legacy_seconds
    batched_rate = len(pairs) / max(batched_seconds, 1e-9)
    speedup = batched_rate / legacy_rate

    payload = {
        "pairs": len(pairs),
        "legacy_seconds": legacy_seconds,
        "batched_seconds": batched_seconds,
        "legacy_pairs_per_second": legacy_rate,
        "batched_pairs_per_second": batched_rate,
        "speedup": speedup,
        "engine_counters": counters.as_dict(),
    }
    Path("BENCH_engine.json").write_text(json.dumps(payload, indent=2) + "\n")

    print("\n\nEngine throughput — candidate scoring, old vs. new path\n")
    print(f"  pairs scored        : {len(pairs)}")
    print(f"  per-pair loop       : {legacy_rate:,.0f} pairs/s ({legacy_seconds:.3f}s)")
    print(f"  batched engine      : {batched_rate:,.0f} pairs/s ({batched_seconds:.5f}s)")
    print(f"  speedup             : {speedup:,.1f}x\n")
    print(format_engine_stats(counters))

    assert speedup >= MIN_SPEEDUP, f"engine speedup {speedup:.1f}x below required {MIN_SPEEDUP}x"
