"""Figure 5 — test F1 as a function of actively labeled samples.

Uses the traces produced by the Table VIII runs: for each domain, the test F1
is recorded after every AL iteration together with the cumulative number of
oracle labels.  Expected shape (paper): the curves rise (or stay flat once
saturated) as labels accumulate; they do not trend downwards.
"""

from __future__ import annotations

import numpy as np

from repro.eval.harness import active_learning_experiment
from repro.eval.reporting import format_f1_trace

from benchmarks.test_table8_active_learning import compute_al_rows


def test_figure5_f1_vs_labels(benchmark, domains, harness_config):
    rows_by_domain = compute_al_rows(domains, harness_config)
    traces = {name: row.f1_trace for name, row in rows_by_domain.items()}

    benchmark(lambda: active_learning_experiment(
        domains["restaurants"], harness_config, label_budget=12, iterations=1,
    ))

    print("\n\nFigure 5 — active learning F1 curves (labels:F1 per iteration)\n")
    print(format_f1_trace(traces))

    for name, trace in traces.items():
        assert len(trace) >= 2, name
        labels = [l for l, _ in trace]
        f1s = [f for _, f in trace]
        # Labels accumulate monotonically.
        assert labels == sorted(labels), name
        # The curve must not trend downwards: the final F1 stays within a
        # small tolerance of the best F1 seen along the way.
        assert f1s[-1] >= max(f1s) - 0.15, name
