"""Blocking scaling micro-benchmark — LSH worker sweep and chunked-cache loads.

Two curves, emitted as ``BENCH_blocking.json`` so CI can track them:

* **LSH build + query sweep** at 1, 2 and 4 workers over one benchmark
  domain's record vectors: hash tables built from worker-computed partial
  maps, query shards coarsened by the measured cost model and fanned across
  the persistent pool, with the per-stage breakdown (dispatch, IPC sample,
  compute, merge) recorded per worker count.
* **Warm cache load**: best-of-3 wall clock of a full load from the
  row-range-chunked layout vs the legacy flat single archive, plus the lazy
  single-shard load that only touches one chunk — the case the chunked
  layout exists for.

Correctness gates always apply (every worker count must produce the
identical candidate-pair list; chunked, flat and lazy loads must serve
identical arrays).  *Performance* gates only apply when
``REPRO_BENCH_REQUIRE_SPEEDUP`` is set — single-core or noisy runners
cannot meaningfully enforce them:

* workers=4 must not be slower than the serial reference pass;
* the chunked full load must stay within 1.5x of the flat full load.

``REPRO_BENCH_SCALE`` multiplies the tiled row counts (default 1.0) so a
beefy runner can push the sweep to larger tables.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.blocking import NearestNeighbourSearch
from repro.config import BlockingConfig
from repro.engine import (
    PersistentEncodingCache,
    ShardedEncodingStore,
    encoding_fingerprint,
    sharded_candidate_pairs,
)
from repro.engine.shard import pool_kind_default, shutdown_pools
from repro.eval.harness import fit_representation
from repro.eval.timing import EngineCounters, StageTimings

WORKER_SWEEP = (1, 2, 4)
TOP_K = 10
#: Rows per shard for the sweep — several shards per worker at the tiled
#: table sizes below, so the fan-out path is genuinely exercised.
CHUNK_ROWS = 256


def _bench_scale() -> float:
    raw = os.environ.get("REPRO_BENCH_SCALE", "").strip()
    try:
        scale = float(raw)
    except ValueError:
        return 1.0
    return scale if scale > 0 else 1.0


#: The benchmark domains are deliberately small; blocking at that size is
#: milliseconds and any pool measurement would just time fork(2).  Tiling
#: the domain's record vectors (unique keys, deterministic jitter) scales
#: the workload to production-shaped row counts without touching the
#: domain generators.
LEFT_ROWS = int(4096 * _bench_scale())
RIGHT_ROWS = int(3072 * _bench_scale())

#: Set (e.g. in the CI multi-core job) to turn the speedup expectations into
#: hard failures instead of reported numbers.
REQUIRE_SPEEDUP = bool(os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP", "").strip())


def _tile_vectors(vectors: np.ndarray, keys, rows: int, seed: int):
    """Deterministically tile ``vectors`` up to ``rows`` with unique keys."""
    rng = np.random.default_rng(seed)
    repeats = -(-rows // len(vectors))  # ceil
    tiled = np.tile(vectors, (repeats, 1))[:rows]
    tiled = tiled + rng.normal(scale=0.01, size=tiled.shape)
    tiled_keys = [f"{key}~{repeat}" for repeat in range(repeats) for key in keys][:rows]
    return tiled, tiled_keys


def _best_of(runs: int, fn):
    """(best seconds, last result) of ``runs`` timed calls."""
    best = float("inf")
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_blocking_scaling(domains, harness_config):
    domain = domains["restaurants"]
    representation, _ = fit_representation(domain, harness_config)
    store = ShardedEncodingStore(
        representation, domain.task, counters=EngineCounters(), shard_rows=CHUNK_ROWS
    )
    left = store.table_encodings("left")
    right = store.table_encodings("right")
    blocking = BlockingConfig(seed=harness_config.seed)
    query_vectors, query_keys = _tile_vectors(left.flat_mu(), left.keys, LEFT_ROWS, seed=11)
    index_vectors, index_keys = _tile_vectors(right.flat_mu(), right.keys, RIGHT_ROWS, seed=13)

    # Serial reference: one whole-table build + query pass.
    start = time.perf_counter()
    reference = (
        NearestNeighbourSearch(blocking)
        .build(index_vectors, index_keys)
        .candidate_pairs(query_vectors, query_keys, k=TOP_K)
    )
    reference_seconds = time.perf_counter() - start
    reference_keys = [pair.key() for pair in reference]

    shutdown_pools()  # pay the first spawn inside the sweep, visibly
    sweep = {}
    for workers in WORKER_SWEEP:
        timings = StageTimings()
        start = time.perf_counter()
        pairs = sharded_candidate_pairs(
            index_vectors, index_keys, query_vectors, query_keys,
            blocking=blocking, k=TOP_K, workers=workers,
            shard_rows=CHUNK_ROWS, stage_timings=timings,
        )
        seconds = time.perf_counter() - start
        assert [pair.key() for pair in pairs] == reference_keys, (
            f"workers={workers} diverged from the serial candidate stream"
        )
        sweep[workers] = {
            "seconds": seconds,
            "build_seconds": timings.seconds("block-build"),
            "query_compute_seconds": timings.seconds("block-query"),
            "query_shards": timings.units("block-query"),
            "query_tasks": timings.counter("query_tasks"),
            "dispatch_seconds": timings.seconds("dispatch"),
            "ipc_sample_seconds": timings.seconds("block-ipc"),
            "merge_seconds": timings.seconds("merge"),
            "speedup_vs_serial": (
                reference_seconds / seconds if seconds > 0 else 0.0
            ),
        }
    shutdown_pools()
    baseline = sweep[1]["seconds"]
    for workers, row in sweep.items():
        row["speedup_vs_1"] = baseline / row["seconds"] if row["seconds"] > 0 else 0.0

    # ------------------------------------------------------------------
    # Warm-load comparison (best of 3): chunked (full + one lazy shard) vs
    # legacy flat.  The entry is tiled to the sweep's row count so it spans
    # many chunks — the table shape the chunked layout exists for.
    # ------------------------------------------------------------------
    import tempfile

    from repro.engine import TableEncodings

    repeats = -(-LEFT_ROWS // len(left))  # ceil
    big = TableEncodings(
        keys=tuple(query_keys),
        irs=np.tile(left.irs, (repeats, 1, 1))[:LEFT_ROWS],
        mu=np.tile(left.mu, (repeats, 1, 1))[:LEFT_ROWS],
        sigma=np.tile(left.sigma, (repeats, 1, 1))[:LEFT_ROWS],
        row_index={key: row for row, key in enumerate(query_keys)},
    )
    with tempfile.TemporaryDirectory(prefix="blocking-bench-cache") as tmp:
        cache = PersistentEncodingCache(Path(tmp), chunk_rows=CHUNK_ROWS)
        version = representation.encoding_version
        fingerprint = encoding_fingerprint(representation, domain.task.left)
        cache.save(domain.task.name, "left", version, fingerprint, big)
        flat_cache = PersistentEncodingCache(Path(tmp) / "flat", chunk_rows=CHUNK_ROWS)
        flat_cache.save_flat(domain.task.name, "left", version, fingerprint, big)

        chunked_full_seconds, chunked_full = _best_of(
            3, lambda: cache.load(domain.task.name, "left", version, fingerprint)
        )

        counters = EngineCounters()
        chunked_shard_seconds, one_shard = _best_of(
            3,
            lambda: cache.load_range(
                domain.task.name, "left", version, fingerprint, 0, CHUNK_ROWS, counters=counters
            ),
        )
        assert counters.chunk_loads == 3, "a one-shard load must read exactly one chunk"

        # The legacy reader is private by design (it only exists as the
        # migration path); timing it here is the whole point of the curve.
        flat_full_seconds, flat_full = _best_of(
            3, lambda: flat_cache._load_flat(domain.task.name, "left", version, fingerprint)
        )

        assert chunked_full is not None and flat_full is not None and one_shard is not None
        np.testing.assert_array_equal(chunked_full.mu, flat_full.mu)
        np.testing.assert_array_equal(one_shard.mu, flat_full.mu[:CHUNK_ROWS])
        total_chunks = len(list(cache.dir_for(domain.task.name, "left", version).glob("chunk-*.npz")))
        assert total_chunks == -(-LEFT_ROWS // CHUNK_ROWS), "entry must span many chunks"

    chunked_vs_flat = (
        chunked_full_seconds / flat_full_seconds if flat_full_seconds > 0 else 0.0
    )
    payload = {
        "domain": domain.name,
        "k": TOP_K,
        "shard_rows": CHUNK_ROWS,
        "left_rows": len(query_keys),
        "right_rows": len(index_keys),
        "pool_kind": pool_kind_default(),
        "candidate_pairs": len(reference_keys),
        "serial_reference_seconds": reference_seconds,
        "workers": {str(workers): row for workers, row in sweep.items()},
        "cache": {
            "rows": LEFT_ROWS,
            "chunks": total_chunks,
            "flat_full_load_seconds": flat_full_seconds,
            "chunked_full_load_seconds": chunked_full_seconds,
            "chunked_vs_flat_ratio": chunked_vs_flat,
            "chunked_one_shard_load_seconds": chunked_shard_seconds,
            "one_shard_vs_flat_speedup": (
                flat_full_seconds / chunked_shard_seconds if chunked_shard_seconds > 0 else 0.0
            ),
        },
    }
    Path("BENCH_blocking.json").write_text(json.dumps(payload, indent=2) + "\n")

    print("\n\nBlocking scaling — LSH build + query worker sweep "
          f"(pool kind: {payload['pool_kind']})\n")
    print(f"  domain            : {domain.name} (tiled to {len(query_keys)}x{len(index_keys)} rows, "
          f"{len(reference_keys)} candidate pairs)")
    print(f"  serial reference  : {reference_seconds:.3f}s")
    for workers, row in sweep.items():
        print(f"  workers={workers}         : {row['seconds']:.3f}s "
              f"({row['speedup_vs_serial']:.2f}x vs serial; build {row['build_seconds']:.3f}s, "
              f"query compute {row['query_compute_seconds']:.3f}s over {row['query_shards']} shards "
              f"in {row['query_tasks']} tasks; dispatch {row['dispatch_seconds'] * 1e3:.2f}ms, "
              f"ipc sample {row['ipc_sample_seconds'] * 1e3:.2f}ms, "
              f"merge {row['merge_seconds'] * 1e3:.2f}ms)")
    print("\nWarm cache loads (best of 3)\n")
    print(f"  flat full load    : {flat_full_seconds * 1e3:.2f}ms")
    print(f"  chunked full load : {chunked_full_seconds * 1e3:.2f}ms "
          f"({total_chunks} chunks, {chunked_vs_flat:.2f}x flat)")
    print(f"  one-shard load    : {chunked_shard_seconds * 1e3:.2f}ms "
          f"({payload['cache']['one_shard_vs_flat_speedup']:.1f}x vs flat full)")

    if REQUIRE_SPEEDUP:
        assert sweep[4]["seconds"] <= reference_seconds, (
            f"workers=4 ({sweep[4]['seconds']:.3f}s) slower than the serial "
            f"reference ({reference_seconds:.3f}s) with REPRO_BENCH_REQUIRE_SPEEDUP set"
        )
        assert chunked_vs_flat <= 1.5, (
            f"chunked full load is {chunked_vs_flat:.2f}x the flat load "
            "(budget: 1.5x) with REPRO_BENCH_REQUIRE_SPEEDUP set"
        )
