"""Mutation scaling micro-benchmark — edit/delete cost tracks the mutation, not the table.

One curve, emitted as ``BENCH_mutation.json`` so CI can track it: a table is
resolved cold (capturing a baseline), then repeatedly *mutated in place* —
each step edits ``e`` rows, deletes ``d`` rows and appends a handful — and
incrementally re-resolved through the delta engine against a warm chunked
cache.  For every step the benchmark records the encode work actually paid
(``rows_reencoded``, ``rows_tombstoned``, ``chunks_patched``,
``tables_encoded``), the matcher work (``pairs_rescored`` vs total
candidates) and wall clock.

Correctness gates (the benchmark fails on divergence, not on slowness —
CI runners are too noisy for hard speedup thresholds on small tables):

* every incremental step re-encodes exactly ``edits + appends`` rows and
  zero whole tables — deletions cost no encode work at all;
* superseding chunk generations are bounded by the chunks the edits touch,
  never the table size (write amplification stays proportional to dirt);
* the final incremental stream matches a cold full resolve of the fully
  mutated table (identical candidate stream and match set), and that cold
  run does strictly *more* encode operations than all warm steps combined.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.config import BlockingConfig
from repro.data.generators import append_rows, delete_rows, load_domain, mutate_rows
from repro.engine import (
    PersistentEncodingCache,
    ShardedEncodingStore,
    merge_scored_batches,
    resolve_delta,
    resolve_stream,
)
from repro.eval.harness import fit_representation
from repro.eval.timing import EngineCounters, StageTimings

from benchmarks.conftest import bench_scale

TOP_K = 10
BATCH_SIZE = 512
CHUNK_ROWS = 64
APPENDS_PER_STEP = 8
#: Successive (edits, deletes) mutations of the right table.  The spread is
#: what shows cost scaling with the mutation, not the table.
MUTATION_SWEEP = ((4, 2), (16, 8), (64, 32))


class _DistanceMatcher:
    """Deterministic elementwise matcher stand-in (no training cost)."""

    def predict_proba(self, left_irs: np.ndarray, right_irs: np.ndarray) -> np.ndarray:
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


def test_mutation_scaling(harness_config):
    # A private domain instance: the mutation helpers rewrite it in place, so
    # the shared session fixture must not be used here.
    domain = load_domain("citations1", scale=max(1.0, bench_scale()))
    representation, _ = fit_representation(domain, harness_config)
    matcher = _DistanceMatcher()
    blocking = BlockingConfig(seed=harness_config.seed)

    with tempfile.TemporaryDirectory(prefix="mutation-bench-cache") as tmp:
        cache = PersistentEncodingCache(Path(tmp), chunk_rows=CHUNK_ROWS)
        store = ShardedEncodingStore(
            representation, domain.task,
            counters=EngineCounters(), persistent=cache, shard_rows=CHUNK_ROWS,
        )

        start = time.perf_counter()
        executor = resolve_delta(
            store, matcher, baseline=None, blocking=blocking, k=TOP_K, batch_size=BATCH_SIZE
        )
        merge_scored_batches(executor.run())
        cold_seconds = time.perf_counter() - start
        baseline = executor.baseline_out
        base_left, base_right = len(domain.task.left), len(domain.task.right)
        assert store.counters.tables_encoded == 2

        steps = []
        for edit_rows, delete_count in MUTATION_SWEEP:
            deleted = delete_rows(domain, side="right", rows=delete_count)
            mutate_rows(domain, side="right", rows=edit_rows)
            appended = append_rows(domain, side="right", rows=APPENDS_PER_STEP)
            reissued = len({r.record_id for r in deleted} & {r.record_id for r in appended})
            rows_before = store.counters.rows_reencoded
            tombstoned_before = store.counters.rows_tombstoned
            patched_before = store.counters.chunks_patched
            tables_before = store.counters.tables_encoded
            rescored_before = store.counters.pairs_rescored
            timings = StageTimings()
            start = time.perf_counter()
            executor = resolve_delta(
                store, matcher, baseline=baseline, blocking=blocking,
                k=TOP_K, batch_size=BATCH_SIZE, stage_timings=timings,
            )
            scored = merge_scored_batches(executor.run())
            seconds = time.perf_counter() - start
            baseline = executor.baseline_out

            rows_reencoded = store.counters.rows_reencoded - rows_before
            rows_tombstoned = store.counters.rows_tombstoned - tombstoned_before
            chunks_patched = store.counters.chunks_patched - patched_before
            assert store.counters.tables_encoded == tables_before, (
                f"mutation of {edit_rows}+{delete_count} rows must not re-encode a whole table"
            )
            assert rows_reencoded == edit_rows + APPENDS_PER_STEP, (
                f"{edit_rows} edits + {APPENDS_PER_STEP} appends re-encoded {rows_reencoded}"
            )
            assert delete_count - reissued <= rows_tombstoned <= delete_count
            # Write amplification is bounded by the chunks the dirt touches.
            dirty_rows = edit_rows + rows_tombstoned
            assert chunks_patched <= dirty_rows, (
                f"{dirty_rows} dirty rows superseded {chunks_patched} chunks"
            )
            steps.append({
                "edit_rows": edit_rows,
                "delete_rows": delete_count,
                "appended_rows": APPENDS_PER_STEP,
                "right_rows_after": len(domain.task.right),
                "seconds": seconds,
                "rows_reencoded": rows_reencoded,
                "rows_tombstoned": rows_tombstoned,
                "chunks_patched": chunks_patched,
                "tables_encoded": 0,
                "pairs_rescored": store.counters.pairs_rescored - rescored_before,
                "candidate_pairs": len(scored),
                "encode_seconds": timings.seconds("encode"),
                "block_extend_seconds": timings.seconds("block-extend"),
            })
        warm = scored

        # Cold reference on the fully mutated table: a fresh store with a
        # cold cache must encode both whole tables from scratch.
        cold_store = ShardedEncodingStore(
            representation, domain.task, counters=EngineCounters(), shard_rows=CHUNK_ROWS
        )
        start = time.perf_counter()
        cold = merge_scored_batches(
            resolve_stream(cold_store, matcher, blocking=blocking, k=TOP_K, batch_size=BATCH_SIZE)
        )
        cold_mutated_seconds = time.perf_counter() - start
        cold_rows_encoded = len(domain.task.left) + len(domain.task.right)
        warm_rows_encoded = sum(step["rows_reencoded"] for step in steps)

        # The acceptance gate: warm mutation resolves do strictly fewer
        # encode operations than the cold run on the same mutated table.
        assert cold_store.counters.tables_encoded == 2
        assert warm_rows_encoded < cold_rows_encoded, (
            f"warm mutations encoded {warm_rows_encoded} rows, "
            f"cold run encoded {cold_rows_encoded}"
        )
        # Equivalence gate on the final state.
        assert [p.key() for p in warm.pairs] == [p.key() for p in cold.pairs]
        assert {p.key() for p in warm.matches()} == {p.key() for p in cold.matches()}

    payload = {
        "domain": domain.name,
        "k": TOP_K,
        "batch_size": BATCH_SIZE,
        "chunk_rows": CHUNK_ROWS,
        "base_rows": {"left": base_left, "right": base_right},
        "cold_base_seconds": cold_seconds,
        "steps": steps,
        "cold_mutated": {
            "seconds": cold_mutated_seconds,
            "rows_encoded": cold_rows_encoded,
            "tables_encoded": 2,
        },
        "warm_rows_encoded_total": warm_rows_encoded,
    }
    Path("BENCH_mutation.json").write_text(json.dumps(payload, indent=2) + "\n")

    print("\n\nMutation scaling — edit/delete cost vs mutation size\n")
    print(f"  domain           : {domain.name} (base {base_left}x{base_right} rows)")
    print(f"  cold base resolve: {cold_seconds:.3f}s (2 tables encoded)")
    for step in steps:
        print(f"  edit {step['edit_rows']:3d} / del {step['delete_rows']:3d} / "
              f"app {step['appended_rows']:2d} : {step['seconds']:.3f}s — "
              f"{step['rows_reencoded']} rows re-encoded, "
              f"{step['rows_tombstoned']} tombstoned, "
              f"{step['chunks_patched']} chunks patched, "
              f"{step['pairs_rescored']}/{step['candidate_pairs']} pairs rescored")
    print(f"  cold mutated run : {cold_mutated_seconds:.3f}s — "
          f"{cold_rows_encoded} rows (2 tables) encoded "
          f"vs {warm_rows_encoded} across all warm steps")
