"""Shared configuration for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section VI) on the synthetic stand-in domains.  Two knobs control the cost:

* ``REPRO_BENCH_SCALE`` — multiplier on dataset sizes (default 1.0);
* ``REPRO_BENCH_FULL`` — set to ``1`` to run every domain and every IR type
  where the default keeps a representative subset to stay CPU-friendly.

Results are printed in the paper's layout (via ``repro.eval.reporting``) so
the console output of ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction record consumed by EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.data.generators import DOMAIN_NAMES, load_domain
from repro.eval.harness import HarnessConfig

#: Domains used when the full sweep is disabled (one clean, one asymmetric,
#: one noisy-text, one noisy-numeric domain — a cross-section of Table II).
FAST_DOMAINS = ["restaurants", "citations1", "cosmetics", "beer"]


def bench_full() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_domains() -> List[str]:
    return list(DOMAIN_NAMES) if bench_full() else list(FAST_DOMAINS)


@pytest.fixture(scope="session")
def harness_config() -> HarnessConfig:
    """Reduced model sizes keeping the Table III proportions."""
    return HarnessConfig(
        ir_dim=48,
        hidden_dim=96,
        latent_dim=32,
        vae_epochs=10,
        matcher_epochs=50,
        al_retrain_epochs=12,
        top_k=10,
        seed=7,
    )


@pytest.fixture(scope="session")
def domains() -> Dict[str, object]:
    """The benchmark domains, generated once per session."""
    return {name: load_domain(name, scale=bench_scale()) for name in bench_domains()}


@pytest.fixture(scope="session")
def all_domains() -> Dict[str, object]:
    """All nine Table II domains (used by the dataset-statistics bench)."""
    return {name: load_domain(name, scale=bench_scale()) for name in DOMAIN_NAMES}
