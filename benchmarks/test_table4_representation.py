"""Table IV — representation learning P/R/F1 @ K=10.

For each domain and IR type, compares LSH top-K nearest-neighbour search on
raw IR vectors against the same search on VAER encodings (means re-ranked by
W2 through the flat-mu representation), exactly mirroring Section VI-B.

Expected shape (paper): VAER encodings match or improve the raw-IR results
across IR types, with the biggest gains on noisy domains.  The benchmark
times one full raw-vs-VAER comparison on the restaurants domain.
"""

from __future__ import annotations

import pytest

from repro.eval.harness import representation_experiment
from repro.eval.reporting import format_representation_table

from benchmarks.conftest import bench_full


def _ir_methods():
    # EmbDI is by far the slowest IR type (graph walks + skip-gram training),
    # so the default run keeps the paper's headline types; REPRO_BENCH_FULL=1
    # runs all four as in Table IV.
    return ("lsa", "w2v", "bert", "embdi") if bench_full() else ("lsa", "w2v")


def test_table4_representation_learning(benchmark, domains, harness_config):
    methods = _ir_methods()
    results = {}
    for name, domain in domains.items():
        results[name] = representation_experiment(
            domain, harness_config, ir_methods=methods, k=harness_config.top_k
        )

    benchmark(
        lambda: representation_experiment(
            domains["restaurants"], harness_config, ir_methods=("lsa",), k=harness_config.top_k
        )
    )

    print("\n\nTable IV — representation learning P/R/F1 @ K=10 (raw IR vs VAER)\n")
    print(format_representation_table(results))

    # Shape check: averaged over domains, VAER recall must not fall behind the
    # raw-IR recall by more than a small margin for any IR type (the paper
    # reports consistent improvements).
    for method in methods:
        raw_recall = [results[d][method]["raw"].recall for d in results]
        vaer_recall = [results[d][method]["vaer"].recall for d in results]
        assert sum(vaer_recall) / len(vaer_recall) >= sum(raw_recall) / len(raw_recall) - 0.1, method

    # Every domain must retrieve a usable share of duplicates with VAER-LSA.
    for name in results:
        assert results[name]["lsa"]["vaer"].recall >= 0.3, name
