"""End-to-end integration tests across the whole library.

These exercise the exact workflows the examples and benchmarks rely on:
supervised VAER, transferred VAER, the active-learning loop and the
baseline comparison — each on a very small synthetic domain.
"""

import numpy as np
import pytest

from repro.baselines import ThresholdMatcher
from repro.config import (
    ActiveLearningConfig,
    MatcherConfig,
    VAEConfig,
    VAERConfig,
)
from repro.core import VAER, EntityRepresentationModel, transfer_representation
from repro.core.active import GroundTruthOracle
from repro.data import read_pairs, read_table, write_pairs, write_table
from repro.data.generators import load_domain
from repro.data.schema import ERTask


@pytest.fixture(scope="module")
def config():
    return VAERConfig(
        vae=VAEConfig(ir_dim=24, hidden_dim=32, latent_dim=12, epochs=8, seed=1),
        matcher=MatcherConfig(epochs=40, mlp_hidden=(32, 16), seed=2),
        active_learning=ActiveLearningConfig(
            samples_per_iteration=8, top_neighbours=5, iterations=3,
            kde_samples_per_pair=20, retrain_epochs=12, seed=3,
        ),
    )


class TestSupervisedWorkflow:
    def test_full_supervised_pipeline_beats_threshold_floor_or_close(self, tiny_domain, config):
        vaer = VAER(config).fit_representation(tiny_domain.task)
        vaer.fit_matcher(tiny_domain.splits.train, tiny_domain.splits.validation)
        vaer_f1 = vaer.evaluate(tiny_domain.splits.test).f1

        floor = ThresholdMatcher().fit(tiny_domain.task, tiny_domain.splits.train)
        floor_f1 = floor.evaluate(tiny_domain.task, tiny_domain.splits.test).f1

        assert vaer_f1 > 0.45
        # The tiny test domain is trivially separable by token overlap, so the
        # Jaccard floor is strong here; VAER must land in the same broad band.
        assert vaer_f1 >= floor_f1 - 0.35

    def test_blocking_then_matching_recovers_duplicates(self, tiny_domain, config):
        vaer = VAER(config).fit_representation(tiny_domain.task)
        vaer.fit_matcher(tiny_domain.splits.train, tiny_domain.splits.validation)
        resolution = vaer.resolve(k=10)
        matched = {(p.left_id, p.right_id) for p in resolution.matches()}
        recovered = sum((l, r) in matched for l, r in tiny_domain.duplicate_map.items())
        assert recovered / len(tiny_domain.duplicate_map) > 0.3


class TestTransferWorkflow:
    def test_transfer_between_domains_keeps_quality(self, tiny_domain, config):
        target = load_domain("restaurants", scale=0.4)
        source_model = EntityRepresentationModel(config.vae, ir_method="lsa").fit(tiny_domain.task)

        # Arities differ (3 vs 6): project the target to the source arity.
        adapted_task = target.task.project(tiny_domain.task.arity)
        adapted = ERTask(
            name=adapted_task.name, left=adapted_task.left, right=adapted_task.right,
            clean=adapted_task.clean,
        )
        transferred = transfer_representation(source_model, adapted)
        vaer = VAER(config)
        vaer.task = adapted
        vaer.representation = transferred
        vaer.fit_matcher(target.splits.train, target.splits.validation)
        metrics = vaer.evaluate(target.splits.test)
        assert metrics.f1 > 0.3


class TestActiveLearningWorkflow:
    def test_al_improves_over_bootstrap_or_stays_close_to_full(self, tiny_domain, config):
        vaer = VAER(config).fit_representation(tiny_domain.task)
        oracle = GroundTruthOracle(tiny_domain.task)
        result = vaer.active_learning(
            oracle, iterations=3, test_pairs=tiny_domain.splits.test, label_budget=40,
        )
        bootstrap_f1 = result.history[0].test_metrics.f1
        final_f1 = result.history[-1].test_metrics.f1
        assert oracle.labels_provided <= 40
        assert final_f1 >= bootstrap_f1 - 0.15  # AL must not collapse the matcher

    def test_al_uses_fewer_labels_than_full_training_set(self, tiny_domain, config):
        vaer = VAER(config).fit_representation(tiny_domain.task)
        oracle = GroundTruthOracle(tiny_domain.task)
        vaer.active_learning(oracle, iterations=2, label_budget=30)
        assert oracle.labels_provided < len(tiny_domain.splits.train)


class TestCSVWorkflow:
    def test_user_supplied_csv_tasks_run_end_to_end(self, tmp_path, tiny_domain, config):
        """The custom-dataset path: write CSVs, read them back, run VAER."""
        write_table(tiny_domain.task.left, tmp_path / "left.csv", include_entity_ids=True)
        write_table(tiny_domain.task.right, tmp_path / "right.csv", include_entity_ids=True)
        write_pairs(tiny_domain.splits.train, tmp_path / "train.csv")
        write_pairs(tiny_domain.splits.test, tmp_path / "test.csv")

        task = ERTask(
            name="from_csv",
            left=read_table(tmp_path / "left.csv"),
            right=read_table(tmp_path / "right.csv"),
        )
        train = read_pairs(tmp_path / "train.csv")
        test = read_pairs(tmp_path / "test.csv")

        vaer = VAER(config).fit_representation(task)
        vaer.fit_matcher(train)
        metrics = vaer.evaluate(test)
        assert metrics.f1 > 0.3
