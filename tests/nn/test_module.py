"""Module/Parameter mechanics: discovery, state_dict, train/eval modes."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Dropout, Linear, MLP, Module, Parameter, Sequential


class _Composite(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 3)
        self.second = Linear(3, 2)
        self.scale = Parameter(np.ones(2), name="scale")

    def forward(self, x):
        return self.second(self.first(x).relu()) * self.scale


class TestParameterDiscovery:
    def test_named_parameters_include_nested(self):
        names = dict(_Composite().named_parameters()).keys()
        assert "first.weight" in names and "second.bias" in names and "scale" in names

    def test_parameters_count(self):
        model = _Composite()
        expected = 4 * 3 + 3 + 3 * 2 + 2 + 2
        assert model.num_parameters() == expected

    def test_parameters_in_list_containers(self):
        seq = Sequential(Linear(2, 2), Linear(2, 1))
        names = [n for n, _ in seq.named_parameters()]
        assert any(n.startswith("layers.0.") for n in names)
        assert any(n.startswith("layers.1.") for n in names)

    def test_named_modules_includes_children(self):
        model = _Composite()
        module_names = [name for name, _ in model.named_modules()]
        assert "first" in module_names and "second" in module_names


class TestTrainEval:
    def test_train_eval_propagates(self):
        model = Sequential(Linear(3, 3), Dropout(0.5), Linear(3, 1))
        model.eval()
        assert all(not m.training for _, m in model.named_modules())
        model.train()
        assert all(m.training for _, m in model.named_modules())

    def test_zero_grad_clears_all(self, rng):
        model = MLP(3, [4], 1, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 3)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        a = MLP(3, [4], 2, rng=rng)
        b = MLP(3, [4], 2, rng=np.random.default_rng(999))
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(5, 3))
        assert np.allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_state_dict_is_a_copy(self, rng):
        model = Linear(2, 2, rng=rng)
        state = model.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(model.weight.data, 0.0)

    def test_strict_missing_key_raises(self, rng):
        model = Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": model.weight.data})

    def test_strict_unexpected_key_raises(self, rng):
        model = Linear(2, 2, rng=rng)
        state = model.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_non_strict_allows_partial(self, rng):
        model = Linear(2, 2, rng=rng)
        model.load_state_dict({"weight": np.zeros((2, 2))}, strict=False)
        assert np.allclose(model.weight.data, 0.0)

    def test_shape_mismatch_raises(self, rng):
        model = Linear(2, 2, rng=rng)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_copy_weights_from(self, rng):
        a = Linear(3, 2, rng=rng)
        b = Linear(3, 2, rng=np.random.default_rng(1))
        b.copy_weights_from(a)
        assert np.allclose(a.weight.data, b.weight.data)
