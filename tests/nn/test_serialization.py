"""Model weight persistence round trips."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    MLP,
    load_metadata,
    load_module,
    load_state_dict,
    save_module,
    save_state_dict,
)


class TestStateDictPersistence:
    def test_roundtrip(self, tmp_path, rng):
        state = {"a": rng.normal(size=(3, 2)), "b": rng.normal(size=4)}
        path = tmp_path / "weights.npz"
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert set(loaded) == {"a", "b"}
        assert np.allclose(loaded["a"], state["a"])

    def test_metadata_roundtrip(self, tmp_path):
        path = tmp_path / "model.npz"
        save_state_dict({"w": np.zeros(2)}, path, metadata={"ir_method": "lsa", "dim": 32})
        metadata = load_metadata(path)
        assert metadata == {"ir_method": "lsa", "dim": 32}

    def test_missing_metadata_returns_none(self, tmp_path):
        path = tmp_path / "model.npz"
        save_state_dict({"w": np.zeros(2)}, path)
        assert load_metadata(path) is None

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "model.npz"
        save_state_dict({"w": np.zeros(2)}, path)
        assert path.exists()


class TestModulePersistence:
    def test_module_roundtrip_preserves_outputs(self, tmp_path, rng):
        model = MLP(4, [6], 2, rng=rng)
        path = tmp_path / "mlp.npz"
        save_module(model, path)
        clone = MLP(4, [6], 2, rng=np.random.default_rng(123))
        load_module(clone, path)
        x = rng.normal(size=(3, 4))
        assert np.allclose(model(Tensor(x)).data, clone(Tensor(x)).data)

    def test_loading_into_wrong_architecture_fails(self, tmp_path, rng):
        model = MLP(4, [6], 2, rng=rng)
        path = tmp_path / "mlp.npz"
        save_module(model, path)
        wrong = MLP(4, [8], 2, rng=rng)
        with pytest.raises((KeyError, ValueError)):
            load_module(wrong, path)
