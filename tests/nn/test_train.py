"""Trainer loop, batching utilities and early stopping."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    Adam,
    EarlyStopping,
    MLP,
    Trainer,
    TrainingHistory,
    batch_indices,
    binary_cross_entropy_with_logits,
    iterate_minibatches,
    mse_loss,
)


class TestBatching:
    def test_batches_cover_all_indices(self, rng):
        seen = np.concatenate(list(batch_indices(53, 8, rng=rng)))
        assert sorted(seen.tolist()) == list(range(53))

    def test_batch_sizes(self, rng):
        sizes = [len(b) for b in batch_indices(20, 6, shuffle=False)]
        assert sizes == [6, 6, 6, 2]

    def test_no_shuffle_is_ordered(self):
        batches = list(batch_indices(10, 4, shuffle=False))
        assert batches[0].tolist() == [0, 1, 2, 3]

    def test_empty_input(self):
        assert list(batch_indices(0, 4)) == []

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batch_indices(10, 0))

    def test_minibatches_aligned(self, rng):
        x = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        for bx, by in iterate_minibatches([x, y], 3, shuffle=False):
            assert np.all(bx[:, 0] // 2 == by)

    def test_minibatches_mismatched_lengths(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches([np.zeros(3), np.zeros(4)], 2))


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0)
        assert not stopper.update(1.0)
        assert not stopper.update(1.0)
        assert stopper.update(1.0)

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2, min_delta=0.01)
        stopper.update(1.0)
        stopper.update(1.0)
        assert not stopper.update(0.5)
        assert not stopper.update(0.5)

    def test_min_delta_threshold(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(1.0)
        # An improvement smaller than min_delta does not count.
        assert stopper.update(0.95)


class TestTrainingHistory:
    def test_record_and_final(self):
        history = TrainingHistory()
        history.record(2.0)
        history.record(1.0, accuracy=0.8)
        assert history.final_loss == 1.0
        assert history.initial_loss == 2.0
        assert history.extra["accuracy"] == [0.8]
        assert history.improved()

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory().final_loss


class TestTrainer:
    def test_learns_linear_classification(self, rng):
        x = rng.normal(size=(150, 5))
        weights = rng.normal(size=5)
        y = (x @ weights > 0).astype(float)
        model = MLP(5, [16], 1, rng=rng)
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=0.01),
            lambda bx, by: binary_cross_entropy_with_logits(model(Tensor(bx)).reshape(-1), Tensor(by)),
            batch_size=32,
            max_epochs=25,
            rng=rng,
        )
        history = trainer.fit(x, y)
        assert history.final_loss < history.initial_loss
        assert history.final_loss < 0.3

    def test_learns_regression(self, rng):
        x = rng.normal(size=(100, 3))
        y = x @ np.array([1.0, -2.0, 0.5])
        model = MLP(3, [8], 1, rng=rng)
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=0.01),
            lambda bx, by: mse_loss(model(Tensor(bx)).reshape(-1), Tensor(by)),
            max_epochs=30,
            rng=rng,
        )
        history = trainer.fit(x, y)
        assert history.improved()

    def test_early_stopping_limits_epochs(self, rng):
        x = rng.normal(size=(20, 2))
        y = np.zeros(20)
        model = MLP(2, [4], 1, rng=rng)
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=1e-6),  # learning rate too small to improve
            lambda bx, by: mse_loss(model(Tensor(bx)).reshape(-1), Tensor(by)),
            max_epochs=50,
            early_stopping=EarlyStopping(patience=2, min_delta=1e-3),
            rng=rng,
        )
        history = trainer.fit(x, y)
        assert len(history.epoch_losses) < 50

    def test_model_left_in_eval_mode(self, rng):
        x = rng.normal(size=(10, 2))
        y = np.zeros(10)
        model = MLP(2, [4], 1, dropout=0.2, rng=rng)
        trainer = Trainer(
            model,
            Adam(model.parameters()),
            lambda bx, by: mse_loss(model(Tensor(bx)).reshape(-1), Tensor(by)),
            max_epochs=2,
            rng=rng,
        )
        trainer.fit(x, y)
        assert not model.training

    def test_empty_data_returns_empty_history(self, rng):
        model = MLP(2, [4], 1, rng=rng)
        trainer = Trainer(
            model,
            Adam(model.parameters()),
            lambda bx, by: mse_loss(model(Tensor(bx)).reshape(-1), Tensor(by)),
            max_epochs=3,
            rng=rng,
        )
        history = trainer.fit(np.zeros((0, 2)), np.zeros(0))
        assert history.epoch_losses == []
