"""Layer behaviour: Linear, activations, Dropout, Sequential, MLP."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Dropout, Linear, MLP, ReLU, Sequential, Sigmoid, Tanh


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer(Tensor(rng.normal(size=(7, 4)))).shape == (7, 3)

    def test_matches_manual_affine(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        x = rng.normal(size=(2, 4))
        assert np.allclose(layer(Tensor(x)).data, x @ layer.weight.data)

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_xavier_vs_he_scale(self, rng):
        relu_layer = Linear(100, 100, activation="relu", rng=np.random.default_rng(0))
        linear_layer = Linear(100, 100, activation="linear", rng=np.random.default_rng(0))
        # He initialisation has larger variance than Xavier for square layers.
        assert relu_layer.weight.data.std() > linear_layer.weight.data.std()

    def test_repr(self):
        assert "4 -> 2" in repr(Linear(4, 2))


class TestActivationsAndDropout:
    def test_relu_module(self):
        assert np.allclose(ReLU()(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_sigmoid_module(self):
        assert np.isclose(Sigmoid()(Tensor([0.0])).data[0], 0.5)

    def test_tanh_module(self):
        assert np.isclose(Tanh()(Tensor([0.0])).data[0], 0.0)

    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(10, 10))
        assert np.allclose(layer(Tensor(x)).data, x)

    def test_dropout_train_zeroes_some(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((20, 20)))).data
        assert np.sum(out == 0) > 0

    def test_dropout_preserves_expectation(self):
        layer = Dropout(0.3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((200, 200)))).data
        assert abs(out.mean() - 1.0) < 0.05

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestSequentialAndMLP:
    def test_sequential_order(self, rng):
        first = Linear(3, 3, rng=rng)
        second = Linear(3, 2, rng=rng)
        model = Sequential(first, ReLU(), second)
        x = rng.normal(size=(4, 3))
        manual = second(first(Tensor(x)).relu()).data
        assert np.allclose(model(Tensor(x)).data, manual)

    def test_sequential_append_and_len(self, rng):
        model = Sequential(Linear(2, 2, rng=rng))
        model.append(ReLU())
        assert len(model) == 2

    def test_mlp_output_shape(self, rng):
        model = MLP(6, [8, 4], 2, rng=rng)
        assert model(Tensor(rng.normal(size=(5, 6)))).shape == (5, 2)

    def test_mlp_hidden_layer_count(self, rng):
        model = MLP(6, [8, 4, 2], 1, rng=rng)
        linear_layers = [l for l in model.net if isinstance(l, Linear)]
        assert len(linear_layers) == 4

    def test_mlp_with_dropout_has_dropout_layers(self, rng):
        model = MLP(6, [8], 1, dropout=0.2, rng=rng)
        assert any(isinstance(l, Dropout) for l in model.net)
