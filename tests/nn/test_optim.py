"""Optimiser behaviour: convergence on convex problems, gradient clipping."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Adam, SGD, clip_grad_norm
from repro.nn.module import Parameter


def _quadratic_step(optimizer, param, target):
    optimizer.zero_grad()
    loss = ((param - Tensor(target)) ** 2).sum()
    loss.backward()
    optimizer.step()
    return float(loss.data)


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            _quadratic_step(opt, param, target)
        assert np.allclose(param.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            param = Parameter(np.array([10.0]))
            opt = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                _quadratic_step(opt, param, np.array([0.0]))
            return abs(float(param.data[0]))
        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        param.grad = np.array([0.0])
        opt.step()
        assert abs(float(param.data[0])) < 1.0

    def test_skips_params_without_grad(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1)
        opt.step()  # no gradient accumulated: should be a no-op
        assert np.allclose(param.data, [1.0])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_parameter_list(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([4.0, -4.0]))
        target = np.array([-1.0, 3.0])
        opt = Adam([param], lr=0.05)
        for _ in range(400):
            _quadratic_step(opt, param, target)
        assert np.allclose(param.data, target, atol=1e-2)

    def test_loss_decreases(self):
        param = Parameter(np.array([3.0]))
        opt = Adam([param], lr=0.01)
        first = _quadratic_step(opt, param, np.array([0.0]))
        for _ in range(30):
            last = _quadratic_step(opt, param, np.array([0.0]))
        assert last < first

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_weight_decay_applied(self):
        param = Parameter(np.array([1.0]))
        opt = Adam([param], lr=0.1, weight_decay=10.0)
        param.grad = np.array([0.0])
        opt.step()
        assert float(param.data[0]) < 1.0


class TestGradClipping:
    def test_clips_to_max_norm(self):
        params = [Parameter(np.zeros(3)) for _ in range(2)]
        for p in params:
            p.grad = np.full(3, 10.0)
        norm_before = clip_grad_norm(params, max_norm=1.0)
        assert norm_before > 1.0
        total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
        assert np.isclose(total, 1.0, atol=1e-9)

    def test_no_clip_below_threshold(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.1, 0.1])
        clip_grad_norm([param], max_norm=10.0)
        assert np.allclose(param.grad, [0.1, 0.1])

    def test_handles_missing_gradients(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], max_norm=1.0) == 0.0
