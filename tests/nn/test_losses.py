"""Loss-function values against hand-computed formulas, plus gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradient
from repro.nn import (
    binary_cross_entropy,
    binary_cross_entropy_with_logits,
    contrastive_loss,
    gaussian_kl_divergence,
    mse_loss,
    sum_squared_error,
)


class TestReconstructionLosses:
    def test_mse_value(self):
        pred, target = Tensor([1.0, 2.0]), Tensor([0.0, 4.0])
        assert np.isclose(mse_loss(pred, target).data, (1 + 4) / 2)

    def test_mse_zero_for_identical(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.isclose(mse_loss(x, Tensor(x.data.copy())).data, 0.0)

    def test_sse_sums_over_features(self):
        pred = Tensor(np.array([[1.0, 1.0], [0.0, 0.0]]))
        target = Tensor(np.zeros((2, 2)))
        # per-example sums are 2 and 0 -> batch mean 1.
        assert np.isclose(sum_squared_error(pred, target).data, 1.0)

    def test_mse_gradient(self, rng):
        check_gradient(lambda a, b: mse_loss(a, b), [rng.normal(size=(2, 3)), rng.normal(size=(2, 3))])


class TestBinaryCrossEntropy:
    def test_bce_value(self):
        probs = Tensor([0.9, 0.1])
        targets = Tensor([1.0, 0.0])
        expected = -np.mean([np.log(0.9), np.log(0.9)])
        assert np.isclose(binary_cross_entropy(probs, targets).data, expected)

    def test_bce_with_logits_matches_bce(self, rng):
        logits = rng.normal(size=10)
        targets = (rng.random(10) > 0.5).astype(float)
        probs = 1 / (1 + np.exp(-logits))
        a = binary_cross_entropy(Tensor(probs), Tensor(targets)).data
        b = binary_cross_entropy_with_logits(Tensor(logits), Tensor(targets)).data
        assert np.isclose(a, b, atol=1e-6)

    def test_bce_with_logits_stable_for_large_logits(self):
        loss = binary_cross_entropy_with_logits(Tensor([1000.0, -1000.0]), Tensor([1.0, 0.0]))
        assert np.isfinite(loss.data) and loss.data < 1e-6

    def test_bce_with_logits_gradient(self, rng):
        logits = rng.normal(size=6)
        targets = (rng.random(6) > 0.5).astype(float)
        check_gradient(lambda z: binary_cross_entropy_with_logits(z, Tensor(targets)), [logits])

    def test_bce_perfect_prediction_near_zero(self):
        loss = binary_cross_entropy(Tensor([0.999999, 0.000001]), Tensor([1.0, 0.0]))
        assert loss.data < 1e-4


class TestGaussianKL:
    def test_kl_zero_for_standard_normal(self):
        mu = Tensor(np.zeros((4, 3)))
        log_var = Tensor(np.zeros((4, 3)))
        assert np.isclose(gaussian_kl_divergence(mu, log_var).data, 0.0)

    def test_kl_positive_otherwise(self, rng):
        mu = Tensor(rng.normal(size=(4, 3)) + 1.0)
        log_var = Tensor(rng.normal(size=(4, 3)))
        assert gaussian_kl_divergence(mu, log_var).data > 0

    def test_kl_matches_closed_form(self):
        mu_val, log_var_val = 1.0, 0.5
        expected = -0.5 * (1 + log_var_val - mu_val ** 2 - np.exp(log_var_val))
        value = gaussian_kl_divergence(Tensor([[mu_val]]), Tensor([[log_var_val]])).data
        assert np.isclose(value, expected)

    def test_kl_gradient(self, rng):
        check_gradient(
            lambda m, lv: gaussian_kl_divergence(m, lv),
            [rng.normal(size=(2, 3)), rng.normal(size=(2, 3))],
        )

    def test_kl_grows_with_mean_offset(self):
        small = gaussian_kl_divergence(Tensor([[0.5]]), Tensor([[0.0]])).data
        large = gaussian_kl_divergence(Tensor([[2.0]]), Tensor([[0.0]])).data
        assert large > small


class TestContrastiveLoss:
    def test_positive_pairs_penalised_by_distance(self):
        distances = Tensor([0.0, 2.0])
        labels = Tensor([1.0, 1.0])
        assert np.isclose(contrastive_loss(distances, labels, margin=1.0).data, 1.0)

    def test_negative_pairs_beyond_margin_cost_nothing(self):
        distances = Tensor([5.0])
        labels = Tensor([0.0])
        assert np.isclose(contrastive_loss(distances, labels, margin=1.0).data, 0.0)

    def test_negative_pairs_inside_margin_penalised(self):
        distances = Tensor([0.2])
        labels = Tensor([0.0])
        assert np.isclose(contrastive_loss(distances, labels, margin=1.0).data, 0.8)

    def test_mixed_batch_value(self):
        distances = Tensor([0.5, 0.5])
        labels = Tensor([1.0, 0.0])
        # positive contributes 0.5, negative contributes max(0, 1 - 0.5) = 0.5.
        assert np.isclose(contrastive_loss(distances, labels, margin=1.0).data, 0.5)

    def test_gradient(self, rng):
        distances = np.abs(rng.normal(size=5)) + 0.1
        labels = (rng.random(5) > 0.5).astype(float)
        check_gradient(
            lambda d: contrastive_loss(d, Tensor(labels), margin=0.5), [distances]
        )
