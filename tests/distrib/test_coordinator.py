"""Coordinator behaviour: dispatch, recovery, restart-resume, fallback.

Workers here are real :class:`repro.distrib.Worker` loops running in
threads (same claim/heartbeat/complete protocol a remote process speaks),
so every path below — including the crash-recovery ones — exercises the
production code end to end.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.distrib import Coordinator, DistributedRuntime, FileLeaseQueue, Worker


def _double(x):
    return 2 * x


def _boom():
    raise ValueError("deterministic worker-side failure")


@pytest.fixture()
def queue(tmp_path):
    return FileLeaseQueue(tmp_path / "queue")


def _start_worker(tmp_path, stop, **kwargs):
    worker = Worker(
        FileLeaseQueue(tmp_path / "queue"), poll_interval=0.01, **kwargs
    )
    thread = threading.Thread(target=worker.run, args=(stop,), daemon=True)
    thread.start()
    return worker, thread


class TestDispatch:
    def test_submit_returns_worker_result(self, tmp_path, queue):
        stop = threading.Event()
        coordinator = Coordinator(queue, tmp_path / "state", poll_interval=0.01)
        worker, thread = _start_worker(tmp_path, stop)
        try:
            future = coordinator.submit(_double, 21)
            assert future.result(timeout=10) == 42
            assert coordinator.units_dispatched == 1
        finally:
            stop.set()
            thread.join(timeout=5)
            coordinator.close()

    def test_identical_units_get_distinct_ids(self, tmp_path, queue):
        coordinator = Coordinator(queue, tmp_path / "state", poll_interval=0.01)
        try:
            coordinator.submit(_double, 7)
            coordinator.submit(_double, 7)
            # Two published unit blobs: the second submission was salted,
            # not silently merged with the first.
            assert len(list(queue.units_dir.iterdir())) == 2
        finally:
            coordinator.close()

    def test_worker_error_exhausts_retries_to_broken_executor(self, tmp_path, queue):
        stop = threading.Event()
        coordinator = Coordinator(
            queue, tmp_path / "state", poll_interval=0.01, max_retries=1
        )
        worker, thread = _start_worker(tmp_path, stop)
        try:
            future = coordinator.submit(_boom)
            with pytest.raises(BrokenExecutor):
                future.result(timeout=20)
            assert coordinator.units_redispatched >= 2  # initial + 1 retry
            assert worker.units_failed >= 1
        finally:
            stop.set()
            thread.join(timeout=5)
            coordinator.close()

    def test_claim_timeout_without_workers(self, tmp_path, queue):
        coordinator = Coordinator(
            queue, tmp_path / "state", poll_interval=0.01, claim_timeout=0.2
        )
        try:
            future = coordinator.submit(_double, 1)
            with pytest.raises(BrokenExecutor):
                future.result(timeout=10)
        finally:
            coordinator.close()

    def test_close_fails_pending_units(self, tmp_path, queue):
        coordinator = Coordinator(queue, tmp_path / "state", poll_interval=0.01)
        future = coordinator.submit(_double, 1)
        coordinator.close()
        with pytest.raises(BrokenExecutor):
            future.result(timeout=5)


class TestRecovery:
    def test_expired_lease_redispatches_to_live_worker(self, tmp_path, queue):
        """A worker that claims a unit and dies: lease expiry re-dispatches."""
        coordinator = Coordinator(
            queue, tmp_path / "state", poll_interval=0.02, lease_timeout=0.3
        )
        try:
            future = coordinator.submit(_double, 8)
            # Simulate the crashed worker: claim the unit, never heartbeat,
            # never complete.
            dead = FileLeaseQueue(tmp_path / "queue", worker_id="dead")
            claimed = dead.claim()
            assert claimed is not None
            # Now a healthy worker arrives; it can only run the unit after
            # the coordinator breaks the stale lease.
            stop = threading.Event()
            worker, thread = _start_worker(tmp_path, stop)
            try:
                assert future.result(timeout=20) == 16
                assert coordinator.units_redispatched >= 1
            finally:
                stop.set()
                thread.join(timeout=5)
        finally:
            coordinator.close()

    def test_restarted_coordinator_adopts_completed_units(self, tmp_path, queue):
        """Coordinator crash between completion and merge: the restarted run
        re-submits the same logical units and adopts their results without
        any worker running."""
        stop = threading.Event()
        first = Coordinator(
            queue, tmp_path / "state", job_id="restartable", poll_interval=0.01
        )
        worker, thread = _start_worker(tmp_path, stop)
        try:
            assert first.submit(_double, 5).result(timeout=10) == 10
        finally:
            stop.set()
            thread.join(timeout=5)
            first.close()
        # No workers alive any more; a fresh coordinator with the same job
        # id must complete instantly from the published result.
        second = Coordinator(
            queue, tmp_path / "state", job_id="restartable",
            poll_interval=0.01, claim_timeout=5.0,
        )
        try:
            future = second.submit(_double, 5)
            assert future.result(timeout=1) == 10
            assert second.units_resumed == 1
        finally:
            second.close()


class TestRuntime:
    def test_file_queue_runtime_context(self, tmp_path):
        from repro.engine.shard import acquire_pool, pool_kind_default

        with DistributedRuntime.file_queue(tmp_path / "queue", workers=3) as runtime:
            assert runtime.workers == 3
            with runtime.activate():
                assert pool_kind_default() == "distrib"
                assert acquire_pool("fork", 3) is runtime.pool

    def test_socket_queue_runtime(self, tmp_path):
        stop = threading.Event()
        runtime = DistributedRuntime.socket_queue(tmp_path / "state", workers=2)
        try:
            host, port = runtime.queue.address
            from repro.distrib import make_queue_client

            worker = Worker(
                make_queue_client(connect=f"{host}:{port}"), poll_interval=0.01
            )
            thread = threading.Thread(target=worker.run, args=(stop,), daemon=True)
            thread.start()
            try:
                future = runtime.coordinator.submit(_double, 100)
                assert future.result(timeout=10) == 200
            finally:
                stop.set()
                thread.join(timeout=5)
        finally:
            runtime.close()

    def test_nested_activation_is_refused(self, tmp_path):
        with DistributedRuntime.file_queue(tmp_path / "queue", workers=2) as runtime:
            with runtime.activate():
                with pytest.raises(RuntimeError):
                    with runtime.activate():
                        pass  # pragma: no cover
