"""Queue transports: lease semantics, exclusivity, and the wire protocol.

Both backends implement one contract — coordinator submits, exactly one
worker claims, heartbeats keep the lease alive, complete publishes a
result — so the file-lease and socket variants are tested against the same
behavioural checklist.
"""

from __future__ import annotations

import pytest

from repro.distrib import FileLeaseQueue, SocketQueueClient, SocketWorkQueue
from repro.distrib.artifacts import find_blob


@pytest.fixture()
def file_queue(tmp_path):
    return FileLeaseQueue(tmp_path / "queue", worker_id="w1")


class TestFileLeaseQueue:
    def test_submit_claim_complete_roundtrip(self, file_queue):
        file_queue.submit("u1", b"payload")
        unit = file_queue.claim()
        assert unit is not None and unit.unit_id == "u1" and unit.payload == b"payload"
        assert file_queue.heartbeat("u1")
        file_queue.complete("u1", b"result")
        assert file_queue.result("u1") == b"result"

    def test_claim_is_exclusive(self, tmp_path):
        q1 = FileLeaseQueue(tmp_path / "q", worker_id="w1")
        q2 = FileLeaseQueue(tmp_path / "q", worker_id="w2")
        q1.submit("u1", b"payload")
        assert q1.claim() is not None
        assert q2.claim() is None  # O_EXCL lease file: one claimant wins

    def test_broken_lease_is_reclaimable(self, tmp_path):
        q1 = FileLeaseQueue(tmp_path / "q", worker_id="w1")
        q2 = FileLeaseQueue(tmp_path / "q", worker_id="w2")
        q1.submit("u1", b"payload")
        assert q1.claim() is not None
        assert q1.lease_age("u1") is not None
        q1.break_lease("u1")
        assert q1.lease_age("u1") is None
        assert not q1.heartbeat("u1")  # revoked: the old holder learns on beat
        reclaimed = q2.claim()
        assert reclaimed is not None and reclaimed.unit_id == "u1"

    def test_resulted_units_are_not_claimable(self, file_queue):
        file_queue.submit("u1", b"payload")
        unit = file_queue.claim()
        file_queue.complete(unit.unit_id, b"result")
        assert file_queue.claim() is None

    def test_torn_unit_blob_is_skipped_and_released(self, file_queue):
        file_queue.submit("u1", b"x" * 128)
        blob = find_blob(file_queue.units_dir, "u1")
        blob.write_bytes(blob.read_bytes()[:50])  # torn write
        assert file_queue.claim() is None
        # The failed claim must not leave a dangling lease: once the
        # coordinator republishes the payload, the unit is claimable again.
        file_queue.submit("u1", b"x" * 128)
        assert file_queue.claim() is not None

    def test_torn_result_reads_as_missing(self, file_queue):
        file_queue.submit("u1", b"payload")
        unit = file_queue.claim()
        file_queue.complete(unit.unit_id, b"r" * 128)
        blob = find_blob(file_queue.results_dir, "u1")
        blob.write_bytes(blob.read_bytes()[:40])
        assert file_queue.result("u1") is None
        file_queue.discard_result("u1")
        assert find_blob(file_queue.results_dir, "u1") is None

    def test_cancel_withdraws_unit(self, file_queue):
        file_queue.submit("u1", b"payload")
        file_queue.cancel("u1")
        assert file_queue.claim() is None

    def test_claims_are_ordered_by_unit_name(self, file_queue):
        file_queue.submit("b-unit", b"second")
        file_queue.submit("a-unit", b"first")
        assert file_queue.claim().unit_id == "a-unit"


class TestSocketQueue:
    def test_roundtrip_over_tcp(self):
        server = SocketWorkQueue()
        try:
            host, port = server.address
            client = SocketQueueClient(host, port)
            server.submit("u1", b"\x00\x01payload")
            unit = client.claim()
            assert unit is not None and unit.unit_id == "u1"
            assert unit.payload == b"\x00\x01payload"
            assert client.heartbeat("u1")
            assert server.lease_age("u1") is not None
            client.complete("u1", b"result-bytes")
            assert server.result("u1") == b"result-bytes"
        finally:
            server.close()

    def test_empty_claim_and_revoked_heartbeat(self):
        server = SocketWorkQueue()
        try:
            host, port = server.address
            client = SocketQueueClient(host, port)
            assert client.claim() is None
            assert not client.heartbeat("never-leased")
            server.submit("u1", b"p")
            assert client.claim() is not None
            server.break_lease("u1")
            assert not client.heartbeat("u1")
        finally:
            server.close()

    def test_claim_is_exclusive_across_clients(self):
        server = SocketWorkQueue()
        try:
            host, port = server.address
            c1 = SocketQueueClient(host, port)
            c2 = SocketQueueClient(host, port)
            server.submit("u1", b"p")
            assert c1.claim() is not None
            assert c2.claim() is None
        finally:
            server.close()
