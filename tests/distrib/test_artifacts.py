"""Content-addressed blobs and state artifacts: the distributed data plane.

The crash-safety story of the whole distributed layer reduces to one
invariant: a blob that reads back is exactly the bytes that were written,
and anything else — torn write, bit flip, wrong length — reads as *absent*.
These tests pin that invariant plus the state-shipping helpers built on it.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.distrib.artifacts import (
    CacheRef,
    DistribStateSpec,
    blob_crc,
    blob_name,
    dump_object,
    find_blob,
    load_object,
    read_blob,
    strip_cache_refs,
    write_blob,
)


class _State:
    """A minimal picklable stand-in for the executors' plan state."""

    def __init__(self, irs=None, note="hello"):
        self.irs = irs
        self.note = note


class TestBlobs:
    def test_roundtrip(self, tmp_path):
        payload = b"the quick brown fox"
        path = write_blob(tmp_path, "unit-a", payload)
        assert path.name == blob_name("unit-a", blob_crc(payload))
        assert read_blob(path) == payload
        assert find_blob(tmp_path, "unit-a") == path

    def test_duplicate_write_is_idempotent(self, tmp_path):
        first = write_blob(tmp_path, "unit-a", b"same bytes")
        second = write_blob(tmp_path, "unit-a", b"same bytes")
        assert first == second
        assert len(list(tmp_path.iterdir())) == 1

    def test_torn_blob_reads_as_missing(self, tmp_path):
        path = write_blob(tmp_path, "unit-a", b"x" * 256)
        path.write_bytes(path.read_bytes()[:100])  # truncate: killed writer
        assert read_blob(path) is None

    def test_corrupt_blob_reads_as_missing(self, tmp_path):
        path = write_blob(tmp_path, "unit-a", b"y" * 64)
        data = bytearray(path.read_bytes())
        data[10] ^= 0xFF
        path.write_bytes(bytes(data))
        assert read_blob(path) is None

    def test_find_blob_never_prefix_matches_other_units(self, tmp_path):
        write_blob(tmp_path, "unit-1", b"one")
        write_blob(tmp_path, "unit-10", b"ten")
        found = read_blob(find_blob(tmp_path, "unit-1"))
        assert found == b"one"

    def test_find_blob_missing(self, tmp_path):
        assert find_blob(tmp_path, "unit-zzz") is None

    def test_object_roundtrip(self):
        value = {"pairs": [1, 2, 3], "name": "beer"}
        assert load_object(dump_object(value)) == value


class TestStateShipping:
    def test_spec_attach_roundtrips_state(self, tmp_path):
        state = _State(irs=[1.0, 2.0], note="shipped")
        path = write_blob(tmp_path, "state", dump_object(state))
        spec = DistribStateSpec(path=str(path))
        attached = spec.attach()
        assert attached.irs == [1.0, 2.0]
        assert attached.note == "shipped"

    def test_strip_cache_refs_substitutes_by_identity(self, tmp_path):
        big = [9.0] * 8
        state = _State(irs=big)
        ref = CacheRef(
            task_name="t", side="left", encoding_version=1, fingerprint={}, array="irs"
        )
        stripped, refs = strip_cache_refs(state, [(big, ref)])
        assert stripped is not state  # original untouched
        assert state.irs is big
        assert stripped.irs is None
        assert refs == (("irs", ref),)

    def test_strip_cache_refs_no_match_returns_unchanged(self):
        state = _State(irs=[1.0])
        other = [2.0]
        ref = CacheRef(
            task_name="t", side="left", encoding_version=1, fingerprint={}, array="irs"
        )
        stripped, refs = strip_cache_refs(state, [(other, ref)])
        assert stripped is state
        assert refs == ()

    def test_cache_ref_miss_raises(self, tmp_path):
        from repro.engine import PersistentEncodingCache

        ref = CacheRef(
            task_name="nope", side="left", encoding_version=1,
            fingerprint={"content_crc": 1}, array="irs",
        )
        cache = PersistentEncodingCache(tmp_path / "cache")
        with pytest.raises(RuntimeError):
            ref.resolve(cache)

    def test_cache_ref_ships_pq_codes_not_floats(
        self, tmp_path, tiny_domain, tiny_representation
    ):
        """A PQ cache entry travels the data plane as codes: the resolved
        array is a :class:`CodecArray` whose uint8 codes and f16-wire
        codebooks round-trip exactly, and nothing on the ship path — encode,
        save, resolve, pickle — rehydrates floats (``bytes_decoded`` stays
        zero until a consumer actually gathers)."""
        from repro.engine import CodecArray, EncodingStore, PersistentEncodingCache
        from repro.eval.timing import EngineCounters

        counters = EngineCounters()
        cache = PersistentEncodingCache(tmp_path / "cache", chunk_rows=16)
        store = EncodingStore(
            tiny_representation, tiny_domain.task,
            counters=counters, persistent=cache, codec="pq",
        )
        encodings = store.table_encodings("left")
        ref = CacheRef(
            task_name=tiny_domain.task.name,
            side="left",
            encoding_version=tiny_representation.encoding_version,
            fingerprint=store.table_fingerprint("left"),
            array="mu",
        )
        # A fresh handle on the same directory — what a remote worker attaches.
        resolved = ref.resolve(PersistentEncodingCache(tmp_path / "cache", chunk_rows=16))
        assert isinstance(resolved, CodecArray)
        assert resolved.codes.dtype == np.uint8
        assert np.array_equal(resolved.codes, encodings.mu.codes)
        assert resolved.params == encodings.mu.params  # codebooks roundtrip bit-exact
        wire = pickle.dumps(resolved)
        assert counters.bytes_decoded == 0  # codes end-to-end, never floats
        clone = pickle.loads(wire)
        assert np.array_equal(clone.codes, resolved.codes)
        assert clone.params == resolved.params
        decoded = encodings.mu.decode()
        assert len(wire) < decoded.nbytes  # the ship payload beats raw floats
        np.testing.assert_array_equal(clone.decode(), decoded)
