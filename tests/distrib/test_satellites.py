"""Satellite regressions riding the distributed-resolution PR.

* the ``pq`` codec must resolve end to end — name resolution, the
  environment knob and CLI flag parsing all accept it now that the trained
  product quantizer replaced the stub (unknown codecs still fail fast with
  the catalogue named);
* ``cache verify`` must audit a shared cache directory — manifest structure
  plus per-chunk fingerprints — without loading arrays, and ``cache list
  --json`` must emit machine-readable rows.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine import (
    EncodingStore,
    PersistentEncodingCache,
    available_codecs,
    get_codec,
    resolve_codec_name,
    usable_codecs,
)
from repro.engine.quant import CODEC_ENV_VAR
from repro.eval.timing import EngineCounters


class TestPqCodecErgonomics:
    def test_pq_stays_registered_for_discovery(self):
        assert "pq" in available_codecs()
        assert get_codec("pq").name == "pq"

    def test_pq_is_usable(self):
        assert set(usable_codecs()) == {"raw", "int8", "pq"}

    def test_resolving_pq_resolves(self):
        assert resolve_codec_name("pq") == "pq"

    def test_unknown_codec_still_fails_with_catalogue(self):
        with pytest.raises(ValueError, match="available"):
            resolve_codec_name("zstd")

    def test_pq_env_value_selects_pq(self, monkeypatch):
        monkeypatch.setenv(CODEC_ENV_VAR, "pq")
        assert resolve_codec_name() == "pq"

    def test_cli_rejects_unknown_codec_at_flag_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["resolve", "--codec", "zstd"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "int8" in err and "raw" in err and "pq" in err


class TestCacheVerify:
    @pytest.fixture()
    def populated(self, tmp_path, tiny_domain, tiny_representation):
        cache = PersistentEncodingCache(tmp_path / "cache", chunk_rows=16)
        store = EncodingStore(
            tiny_representation, tiny_domain.task,
            counters=EngineCounters(), persistent=cache,
        )
        store.table_encodings("left")
        store.table_encodings("right")
        return cache

    def test_intact_cache_verifies_clean(self, populated):
        reports = populated.verify_entries()
        assert len(reports) == 2
        assert all(report["ok"] for report in reports)
        assert all(report["chunks_checked"] > 0 for report in reports)
        assert all(report["problems"] == [] for report in reports)

    def test_missing_chunk_is_reported(self, populated):
        victim = next(populated.directory.glob("*/*/chunk-*.npz"))
        victim.unlink()
        reports = populated.verify_entries()
        bad = [r for r in reports if not r["ok"]]
        assert len(bad) == 1
        assert any("missing chunk archive" in p for p in bad[0]["problems"])

    def test_torn_chunk_is_reported(self, populated):
        victim = next(populated.directory.glob("*/*/chunk-*.npz"))
        victim.write_bytes(victim.read_bytes()[:64])
        reports = populated.verify_entries()
        bad = [r for r in reports if not r["ok"]]
        assert len(bad) == 1
        assert any("unreadable" in p for p in bad[0]["problems"])

    def test_invalid_manifest_is_reported(self, populated):
        manifest = next(populated.directory.glob("*/*/manifest.json"))
        manifest.write_text("{ not json")
        reports = populated.verify_entries()
        bad = [r for r in reports if not r["ok"]]
        assert len(bad) == 1
        assert "manifest unreadable or structurally invalid" in bad[0]["problems"]

    def test_cli_verify_exit_codes(self, populated, capsys):
        assert main(["cache", "verify", "--cache-dir", str(populated.directory)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        next(populated.directory.glob("*/*/chunk-*.npz")).unlink()
        assert main(["cache", "verify", "--cache-dir", str(populated.directory)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_cli_verify_json(self, populated, capsys):
        assert main([
            "cache", "verify", "--cache-dir", str(populated.directory), "--json"
        ]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 2
        assert all(report["ok"] for report in reports)

    def test_cli_list_json(self, populated, capsys):
        assert main([
            "cache", "list", "--cache-dir", str(populated.directory), "--json"
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert {row["side"] for row in rows} == {"left", "right"}
        assert all(row["layout"] == "chunked" for row in rows)
