"""Distributed resolution vs. the serial stream: the byte-identity gate.

The distributed runner's whole contract is that fanning stage units out to
N workers changes wall-clock, not output: same candidate pairs, same order,
same probability bytes as ``resolve_stream``.  These tests run real
:class:`repro.distrib.Worker` loops (in threads — the same claim/execute
code a remote process runs) against the file-lease queue, including a
worker that abandons its first unit mid-run to force the lease-expiry
recovery path.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import VAEConfig
from repro.core.pipeline import VAER
from repro.core.representation import EntityRepresentationModel
from repro.data.generators import load_domain
from repro.distrib import DistributedRuntime, FileLeaseQueue, Worker
from repro.eval.timing import StageTimings


class DistanceMatcher:
    """Elementwise deterministic matcher (see tests/engine/test_delta.py):
    probabilities are independent of batch composition, so identity checks
    can demand exact float equality."""

    def predict_proba(self, left_irs, right_irs):
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


class AbandonOnceWorker(Worker):
    """Claims its first unit and walks away — the crashed-worker shape."""

    def __init__(self, queue, **kwargs):
        super().__init__(queue, **kwargs)
        self.abandoned = False

    def execute(self, unit):
        if not self.abandoned:
            self.abandoned = True
            return  # lease never heartbeats again; coordinator re-dispatches
        super().execute(unit)


def _build_model(cache_dir=None):
    domain = load_domain("beer", scale=0.3)
    model = VAER(cache_dir=cache_dir)
    model.representation = EntityRepresentationModel(
        VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=7),
        ir_method="lsa",
    ).fit(domain.task)
    model.task = domain.task
    model.matcher = DistanceMatcher()
    return model


def _start_workers(queue_dir, count, worker_cls=Worker):
    stop = threading.Event()
    workers, threads = [], []
    for _ in range(count):
        worker = worker_cls(FileLeaseQueue(queue_dir), poll_interval=0.01)
        thread = threading.Thread(target=worker.run, args=(stop,), daemon=True)
        thread.start()
        workers.append(worker)
        threads.append(thread)

    def _stop():
        stop.set()
        for thread in threads:
            thread.join(timeout=10)

    return workers, _stop


def _assert_identical(serial, distributed):
    assert [b.batch_index for b in serial] == [b.batch_index for b in distributed]
    for left, right in zip(serial, distributed):
        assert [p.key() for p in left.pairs] == [p.key() for p in right.pairs]
        np.testing.assert_array_equal(left.probabilities, right.probabilities)


@pytest.mark.parametrize("workers", [2, 4])
def test_distributed_matches_serial_stream(tmp_path, workers):
    model = _build_model(cache_dir=str(tmp_path / "cache"))
    serial = list(model.resolve_stream(k=5, batch_size=64))
    _, stop = _start_workers(tmp_path / "queue", workers)
    try:
        stage = StageTimings()
        distributed = list(model.resolve_distributed(
            workers=workers, queue_dir=tmp_path / "queue",
            k=5, batch_size=64, stage_timings=stage,
        ))
    finally:
        stop()
    _assert_identical(serial, distributed)
    assert stage.counter("units_dispatched") > 0
    assert stage.seconds("dispatch") >= 0.0
    assert "merge" in stage.stages()


def test_distributed_survives_abandoned_unit(tmp_path):
    """Worker killed mid-unit: lease expiry -> re-dispatch -> identical output."""
    model = _build_model()
    serial = list(model.resolve_stream(k=5, batch_size=64))
    workers, stop = _start_workers(
        tmp_path / "queue", 1, worker_cls=AbandonOnceWorker
    )
    healthy, stop_healthy = _start_workers(tmp_path / "queue", 1)
    try:
        stage = StageTimings()
        distributed = list(model.resolve_distributed(
            workers=2, queue_dir=tmp_path / "queue",
            k=5, batch_size=64, stage_timings=stage, lease_timeout=0.5,
        ))
    finally:
        stop()
        stop_healthy()
    assert workers[0].abandoned
    _assert_identical(serial, distributed)
    assert stage.counter("units_redispatched") >= 1


def test_distributed_without_workers_falls_back_serially(tmp_path):
    """Zero live workers: claim_timeout breaks the pool and the executors'
    serial-tail fallback still produces the exact stream."""
    model = _build_model()
    serial = list(model.resolve_stream(k=5, batch_size=64))
    runtime = DistributedRuntime.file_queue(
        tmp_path / "queue", workers=2, claim_timeout=0.3
    )
    with runtime:
        distributed = list(model.resolve_distributed(
            runtime=runtime, k=5, batch_size=64,
        ))
    _assert_identical(serial, distributed)


def test_workers_one_degenerates_to_local_serial(tmp_path):
    model = _build_model()
    serial = list(model.resolve_stream(k=5, batch_size=64))
    distributed = list(model.resolve_distributed(
        workers=1, queue_dir=tmp_path / "queue", k=5, batch_size=64,
    ))
    _assert_identical(serial, distributed)
    units_dir = tmp_path / "queue" / "units"
    assert not units_dir.is_dir() or not list(units_dir.iterdir())


def test_resolve_distributed_requires_a_transport():
    model = _build_model()
    with pytest.raises(ValueError):
        list(model.resolve_distributed(workers=2))


def test_serve_session_refreshes_through_runtime(tmp_path):
    """ServeSession with a distributed runtime: the cold resolve fans out to
    remote workers and the snapshot matches a local session's exactly."""
    from repro.serve import ServeSession

    local = ServeSession(_build_model(), k=4, batch_size=32).start()
    try:
        reference = local.snapshot
    finally:
        local.close()

    _, stop = _start_workers(tmp_path / "queue", 2)
    runtime = DistributedRuntime.file_queue(tmp_path / "queue", workers=2)
    try:
        session = ServeSession(
            _build_model(), k=4, batch_size=32, runtime=runtime
        ).start()
        try:
            snapshot = session.snapshot
            assert snapshot.pairs == reference.pairs
            assert snapshot.match_count == reference.match_count
        finally:
            session.close()
    finally:
        runtime.close()
        stop()
