"""Top-K nearest neighbour search and candidate-pair generation."""

import numpy as np
import pytest

from repro.blocking import NearestNeighbourSearch
from repro.config import BlockingConfig
from repro.exceptions import NotFittedError


@pytest.fixture(scope="module")
def indexed_search():
    rng = np.random.default_rng(11)
    right = rng.normal(size=(30, 6))
    keys = [f"r{i}" for i in range(30)]
    search = NearestNeighbourSearch(BlockingConfig(seed=5)).build(right, keys)
    return search, right


class TestNearestNeighbourSearch:
    def test_top_k_before_build_raises(self):
        with pytest.raises(NotFittedError):
            NearestNeighbourSearch().top_k(np.zeros((1, 4)), ["q0"], k=2)

    def test_top_k_returns_k_results(self, indexed_search):
        search, right = indexed_search
        results = search.top_k(right[:5], [f"q{i}" for i in range(5)], k=4)
        assert len(results) == 5
        assert all(len(r.neighbours) == 4 for r in results)

    def test_nearest_is_itself_when_key_differs(self, indexed_search):
        search, right = indexed_search
        result = search.top_k(right[:1], ["query"], k=1)[0]
        assert result.neighbours[0][0] == "r0"

    def test_query_key_excluded_from_own_results(self, indexed_search):
        search, right = indexed_search
        result = search.top_k(right[:1], ["r0"], k=3)[0]
        assert "r0" not in result.keys()

    def test_candidate_pairs_unique(self, indexed_search):
        search, right = indexed_search
        pairs = search.candidate_pairs(right[:4], [f"q{i}" for i in range(4)], k=3)
        keys = [(p.left_id, p.right_id) for p in pairs]
        assert len(keys) == len(set(keys)) == 12

    def test_neighbour_map_structure(self, indexed_search):
        search, right = indexed_search
        mapping = search.neighbour_map(right[:3], ["a", "b", "c"], k=2)
        assert set(mapping) == {"a", "b", "c"}
        assert all(len(v) == 2 for v in mapping.values())

    def test_pairs_and_map_share_one_assembly(self, indexed_search):
        """Both outputs are views of the same top-K results."""
        from repro.blocking import assemble_candidate_pairs, assemble_neighbour_map

        search, right = indexed_search
        queries, keys = right[:4], [f"q{i}" for i in range(4)]
        results = search.top_k(queries, keys, k=3)
        assert [p.key() for p in search.candidate_pairs(queries, keys, k=3)] == [
            p.key() for p in assemble_candidate_pairs(results)
        ]
        assert search.neighbour_map(queries, keys, k=3) == assemble_neighbour_map(results)
        # And they agree with each other pair for pair.
        mapping = search.neighbour_map(queries, keys, k=3)
        flattened = [(q, n) for q in keys for n in mapping[q]]
        assert [(p.left_id, p.right_id) for p in search.candidate_pairs(queries, keys, k=3)] == [
            (str(q), str(n)) for q, n in flattened
        ]

    def test_from_index_wraps_prebuilt_index(self, indexed_search):
        from repro.blocking import EuclideanLSHIndex, NearestNeighbourSearch

        search, right = indexed_search
        rewrapped = NearestNeighbourSearch.from_index(search.index, search.config)
        assert rewrapped.top_k(right[:2], ["x", "y"], k=3) == search.top_k(right[:2], ["x", "y"], k=3)
        with pytest.raises(NotFittedError):
            NearestNeighbourSearch().index
