"""Euclidean LSH index correctness and recall behaviour."""

import numpy as np
import pytest

from repro.blocking import EuclideanLSHIndex
from repro.exceptions import NotFittedError


@pytest.fixture(scope="module")
def clustered_vectors():
    """Three well-separated clusters of 20 points each."""
    rng = np.random.default_rng(3)
    centres = np.array([[0.0] * 8, [50.0] * 8, [-50.0] * 8])
    vectors, labels = [], []
    for c, centre in enumerate(centres):
        vectors.append(centre + rng.normal(scale=0.5, size=(20, 8)))
        labels.extend([c] * 20)
    return np.vstack(vectors), np.array(labels)


class TestEuclideanLSHIndex:
    def test_query_before_build_raises(self):
        with pytest.raises(NotFittedError):
            EuclideanLSHIndex().query(np.zeros(4))

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            EuclideanLSHIndex(num_tables=0)
        with pytest.raises(ValueError):
            EuclideanLSHIndex(bucket_width=0.0)

    def test_build_rejects_non_2d(self):
        with pytest.raises(ValueError):
            EuclideanLSHIndex().build(np.zeros(5))

    def test_keys_must_align(self):
        with pytest.raises(ValueError):
            EuclideanLSHIndex().build(np.zeros((3, 2)), keys=["a"])

    def test_exact_match_is_nearest(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        key, distance = index.query(vectors[5], k=1)[0]
        assert key == 5 and distance == pytest.approx(0.0)

    def test_neighbours_come_from_same_cluster(self, clustered_vectors):
        vectors, labels = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        for query_index in (0, 25, 45):
            neighbours = index.query(vectors[query_index], k=5)
            neighbour_labels = [labels[k] for k, _ in neighbours]
            assert all(l == labels[query_index] for l in neighbour_labels)

    def test_exclude_key(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        results = index.query(vectors[0], k=3, exclude=0)
        assert 0 not in [k for k, _ in results]

    def test_custom_keys_returned(self, clustered_vectors):
        vectors, _ = clustered_vectors
        keys = [f"id{i}" for i in range(len(vectors))]
        index = EuclideanLSHIndex(seed=1).build(vectors, keys)
        assert index.query(vectors[0], k=1)[0][0] == "id0"

    def test_distances_sorted_ascending(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        distances = [d for _, d in index.query(vectors[0], k=10)]
        assert distances == sorted(distances)

    def test_fallback_when_buckets_sparse(self):
        """With very few points, recall must not collapse (linear-scan fallback)."""
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(6, 4)) * 100
        index = EuclideanLSHIndex(bucket_width=0.01, seed=2).build(vectors)
        assert len(index.query(vectors[0], k=5)) == 5

    def test_query_batch(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        results = index.query_batch(vectors[:3], k=2)
        assert len(results) == 3 and all(len(r) == 2 for r in results)

    def test_bucket_statistics(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        stats = index.bucket_statistics()
        assert stats["num_buckets"] >= 1 and stats["max_bucket_size"] >= stats["mean_bucket_size"]

    def test_size_property(self, clustered_vectors):
        vectors, _ = clustered_vectors
        assert EuclideanLSHIndex().build(vectors).size == len(vectors)
        assert EuclideanLSHIndex().size == 0


class TestEdgeCases:
    """Regression tests: NotFittedError consistency and degenerate shapes."""

    def test_query_batch_before_build_raises(self):
        with pytest.raises(NotFittedError):
            EuclideanLSHIndex().query_batch(np.zeros((3, 4)))

    def test_query_batch_before_build_raises_even_when_empty(self):
        """An empty query block must not silently bypass the fitted check."""
        with pytest.raises(NotFittedError):
            EuclideanLSHIndex().query_batch(np.zeros((0, 4)))

    def test_prepared_but_unbuilt_index_is_not_fitted(self):
        """prepare() alone leaves no hash tables: queries must refuse, not
        silently fall back to a linear scan."""
        index = EuclideanLSHIndex().prepare(np.zeros((4, 3)))
        with pytest.raises(NotFittedError):
            index.query(np.zeros(3))

    def test_bucket_statistics_before_build_raises(self):
        with pytest.raises(NotFittedError):
            EuclideanLSHIndex().bucket_statistics()

    def test_empty_table_queries_return_empty(self):
        index = EuclideanLSHIndex().build(np.zeros((0, 4)))
        assert index.size == 0
        assert index.query(np.ones(4), k=5) == []
        assert index.query_batch(np.ones((2, 4)), k=5) == [[], []]
        stats = index.bucket_statistics()
        assert stats == {"mean_bucket_size": 0.0, "max_bucket_size": 0.0, "num_buckets": 0.0}

    def test_single_row_table(self):
        index = EuclideanLSHIndex(seed=4).build(np.ones((1, 4)), keys=["only"])
        results = index.query(np.ones(4), k=5)
        assert [key for key, _ in results] == ["only"]
        assert index.query(np.ones(4), k=5, exclude="only") == []

    def test_k_larger_than_index_size(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors[:7])
        assert len(index.query(vectors[0], k=50)) == 7
        assert len(index.query(vectors[0], k=50, exclude=0)) == 6

    def test_non_positive_k_rejected(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        with pytest.raises(ValueError):
            index.query(vectors[0], k=0)
        with pytest.raises(ValueError):
            index.query_batch(vectors[:2], k=-3)

    def test_query_batch_exclude_must_align(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        with pytest.raises(ValueError):
            index.query_batch(vectors[:3], k=2, exclude=[0])

    def test_query_equals_query_batch_row(self, clustered_vectors):
        """The scalar and batched paths share one ranking implementation."""
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        batched = index.query_batch(vectors[:5], k=4)
        for row in range(5):
            assert index.query(vectors[row], k=4) == batched[row]

    def test_rebuild_replaces_previous_index(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        index.build(vectors[:10], keys=[f"n{i}" for i in range(10)])
        assert index.size == 10
        assert index.query(vectors[0], k=1)[0][0] == "n0"


class TestShardedBuild:
    def test_hash_rows_install_matches_build(self, clustered_vectors):
        """Partial maps merged in row order reproduce the serial tables."""
        vectors, _ = clustered_vectors
        serial = EuclideanLSHIndex(seed=2).build(vectors)
        sharded = EuclideanLSHIndex(seed=2).prepare(vectors)
        partials = [sharded.hash_rows(start, start + 13) for start in range(0, len(vectors), 13)]
        sharded.install_tables(partials)
        for serial_table, sharded_table in zip(serial._tables, sharded._tables):
            assert dict(serial_table) == dict(sharded_table)
        for row in (0, 25, 59):
            assert serial.query(vectors[row], k=5) == sharded.query(vectors[row], k=5)

    def test_hash_rows_before_prepare_raises(self):
        with pytest.raises(NotFittedError):
            EuclideanLSHIndex().hash_rows(0, 4)

    def test_hash_rows_clamps_out_of_range(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=2).prepare(vectors)
        empty = index.hash_rows(500, 900)
        assert all(table == {} for table in empty)

    def test_install_rejects_wrong_table_count(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(num_tables=4, seed=2).prepare(vectors)
        with pytest.raises(ValueError):
            index.install_tables([[{}, {}]])


class TestBucketStatistics:
    """Diagnostics output paths: totals, empty indexes, lifecycle errors."""

    def test_before_build_raises(self, clustered_vectors):
        vectors, _ = clustered_vectors
        with pytest.raises(NotFittedError):
            EuclideanLSHIndex().bucket_statistics()
        # prepare alone is not enough: the tables are not installed yet.
        with pytest.raises(NotFittedError):
            EuclideanLSHIndex().prepare(vectors).bucket_statistics()

    def test_empty_index_reports_zero_buckets(self):
        index = EuclideanLSHIndex(seed=1).build(np.zeros((0, 4)))
        assert index.bucket_statistics() == {
            "mean_bucket_size": 0.0, "max_bucket_size": 0.0, "num_buckets": 0.0
        }

    def test_occupancy_accounts_for_every_row_in_every_table(self, clustered_vectors):
        """Each of the num_tables hash tables buckets all n rows exactly once,
        so summed occupancy is num_tables * n."""
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(num_tables=6, seed=3).build(vectors)
        stats = index.bucket_statistics()
        total = stats["mean_bucket_size"] * stats["num_buckets"]
        assert total == pytest.approx(6 * len(vectors))
        assert stats["max_bucket_size"] <= len(vectors)


class TestExtend:
    """Incremental index growth must be indistinguishable from a rebuild."""

    def test_extend_matches_full_rebuild(self, clustered_vectors):
        vectors, _ = clustered_vectors
        keys = [f"k{i}" for i in range(len(vectors))]
        full = EuclideanLSHIndex(seed=4).build(vectors, keys)
        grown = EuclideanLSHIndex(seed=4).build(vectors[:40], keys[:40])
        grown.extend(vectors[40:], keys[40:])
        assert grown.size == full.size and grown.keys == full.keys
        for full_table, grown_table in zip(full._tables, grown._tables):
            assert dict(full_table) == dict(grown_table)
        queries = vectors[::7]
        assert full.query_batch(queries, k=5) == grown.query_batch(queries, k=5)

    def test_repeated_extends_match_rebuild(self, clustered_vectors):
        vectors, _ = clustered_vectors
        full = EuclideanLSHIndex(seed=5).build(vectors)
        grown = EuclideanLSHIndex(seed=5).build(vectors[:20], list(range(20)))
        for start in range(20, len(vectors), 11):
            stop = min(start + 11, len(vectors))
            grown.extend(vectors[start:stop], list(range(start, stop)))
        for full_table, grown_table in zip(full._tables, grown._tables):
            assert dict(full_table) == dict(grown_table)
        assert full.query(vectors[3], k=4) == grown.query(vectors[3], k=4)

    def test_extend_validations(self, clustered_vectors):
        vectors, _ = clustered_vectors
        with pytest.raises(NotFittedError):
            EuclideanLSHIndex().extend(vectors[:2], ["a", "b"])
        index = EuclideanLSHIndex(seed=1).build(vectors)
        with pytest.raises(ValueError):
            index.extend(np.zeros((2, vectors.shape[1] + 1)), ["a", "b"])
        with pytest.raises(ValueError):
            index.extend(vectors[:3], ["a"])  # keys misaligned
        with pytest.raises(ValueError):
            index.extend(np.zeros((2, 2, 2)), ["a", "b"])  # not 2-d
        size = index.size
        index.extend(np.zeros((0, vectors.shape[1])), [])  # empty: no-op
        assert index.size == size


class TestRemovePatchCompact:
    """Delete-capable blocking: tombstones, in-place patches, compaction."""

    def _keys(self, n):
        return [f"k{i}" for i in range(n)]

    def test_remove_masks_rows_out_of_answers(self, clustered_vectors):
        vectors, _ = clustered_vectors
        keys = self._keys(len(vectors))
        index = EuclideanLSHIndex(seed=6, compaction_load=1.0).build(vectors, keys)
        removed = ["k3", "k25", "k41"]
        index.remove(removed)
        assert index.size == len(vectors)  # stored rows untouched
        assert index.live_size == len(vectors) - 3
        assert index.tombstoned == 3
        assert set(removed).isdisjoint(index.live_keys)
        alive = [i for i in range(len(vectors)) if f"k{i}" not in removed]
        rebuilt = EuclideanLSHIndex(seed=6).build(vectors[alive], [keys[i] for i in alive])
        queries = vectors[::7]
        assert index.query_batch(queries, k=5) == rebuilt.query_batch(queries, k=5)

    def test_remove_then_fallback_scan_excludes_dead_rows(self):
        """The linear-scan fallback (sparse buckets) must honour tombstones."""
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(6, 4))
        index = EuclideanLSHIndex(seed=2, bucket_width=0.01, compaction_load=1.0)
        index.build(vectors, self._keys(6))
        index.remove(["k0", "k5"])
        results = index.query_batch(vectors, k=6)
        for row_results in results:
            returned = {key for key, _ in row_results}
            assert "k0" not in returned and "k5" not in returned
            assert len(row_results) == 4

    def test_patch_matches_rebuild_over_edited_vectors(self, clustered_vectors):
        vectors, _ = clustered_vectors
        keys = self._keys(len(vectors))
        index = EuclideanLSHIndex(seed=7).build(vectors, keys)
        edited = vectors.copy()
        rng = np.random.default_rng(9)
        dirty = [4, 21, 50]
        edited[dirty] = rng.normal(scale=40.0, size=(len(dirty), vectors.shape[1]))
        index.patch(edited[dirty], [keys[i] for i in dirty])
        rebuilt = EuclideanLSHIndex(seed=7).build(edited, keys)
        # Bucket-identical, not just answer-identical: patch reinserts the
        # row at its sorted position inside the destination buckets.
        for patched_table, rebuilt_table in zip(index._tables, rebuilt._tables):
            assert {b: r for b, r in patched_table.items() if r} == dict(rebuilt_table)
        queries = edited[::5]
        assert index.query_batch(queries, k=5) == rebuilt.query_batch(queries, k=5)

    def test_compaction_is_bucket_identical_to_rebuild(self, clustered_vectors):
        vectors, _ = clustered_vectors
        keys = self._keys(len(vectors))
        index = EuclideanLSHIndex(seed=8, compaction_load=1.0).build(vectors, keys)
        removed = [f"k{i}" for i in range(0, len(vectors), 4)]
        index.remove(removed)
        index.compact()
        assert index.tombstoned == 0
        alive = [i for i in range(len(vectors)) if f"k{i}" not in set(removed)]
        rebuilt = EuclideanLSHIndex(seed=8).build(vectors[alive], [keys[i] for i in alive])
        assert index.size == rebuilt.size == len(alive)
        assert index.keys == rebuilt.keys
        for compacted_table, rebuilt_table in zip(index._tables, rebuilt._tables):
            assert dict(compacted_table) == dict(rebuilt_table)

    def test_load_threshold_triggers_automatic_compaction(self, clustered_vectors):
        vectors, _ = clustered_vectors
        keys = self._keys(len(vectors))
        index = EuclideanLSHIndex(seed=9, compaction_load=0.25).build(vectors, keys)
        index.remove(["k0", "k1"])  # 2/60: below the load threshold
        assert index.tombstoned == 2
        index.remove([f"k{i}" for i in range(2, 20)])  # 20/60 > 0.25
        assert index.tombstoned == 0, "crossing the load threshold must compact"
        assert index.size == index.live_size == len(vectors) - 20

    def test_mutation_sequence_matches_rebuild(self, clustered_vectors):
        """remove + patch + extend in one session == rebuild of the end state."""
        vectors, _ = clustered_vectors
        keys = self._keys(len(vectors))
        index = EuclideanLSHIndex(seed=10, compaction_load=1.0).build(vectors[:50], keys[:50])
        edited = vectors.copy()
        edited[7] = edited[7] + 30.0
        index.remove(["k12", "k33"])
        index.patch(edited[7:8], ["k7"])
        index.extend(vectors[50:], keys[50:])
        alive = [i for i in range(len(vectors)) if i not in (12, 33)]
        rebuilt = EuclideanLSHIndex(seed=10).build(edited[alive], [keys[i] for i in alive])
        queries = edited[::6]
        assert index.query_batch(queries, k=5) == rebuilt.query_batch(queries, k=5)
        assert index.live_keys == tuple(keys[i] for i in alive)

    def test_remove_and_patch_validations(self, clustered_vectors):
        vectors, _ = clustered_vectors
        with pytest.raises(NotFittedError):
            EuclideanLSHIndex().remove(["a"])
        with pytest.raises(NotFittedError):
            EuclideanLSHIndex().patch(vectors[:1], ["a"])
        with pytest.raises(ValueError):
            EuclideanLSHIndex(compaction_load=0.0)
        index = EuclideanLSHIndex(seed=1).build(vectors, self._keys(len(vectors)))
        with pytest.raises(KeyError):
            index.remove(["unknown"])
        with pytest.raises(KeyError):
            index.patch(vectors[:1], ["unknown"])
        index.remove(["k2"])
        with pytest.raises(KeyError):  # tombstoned keys are gone
            index.patch(vectors[:1], ["k2"])
        with pytest.raises(ValueError):
            index.patch(vectors[:2], ["k0"])  # keys misaligned
        with pytest.raises(ValueError):
            index.patch(np.zeros((1, vectors.shape[1] + 2)), ["k0"])
