"""Euclidean LSH index correctness and recall behaviour."""

import numpy as np
import pytest

from repro.blocking import EuclideanLSHIndex
from repro.exceptions import NotFittedError


@pytest.fixture(scope="module")
def clustered_vectors():
    """Three well-separated clusters of 20 points each."""
    rng = np.random.default_rng(3)
    centres = np.array([[0.0] * 8, [50.0] * 8, [-50.0] * 8])
    vectors, labels = [], []
    for c, centre in enumerate(centres):
        vectors.append(centre + rng.normal(scale=0.5, size=(20, 8)))
        labels.extend([c] * 20)
    return np.vstack(vectors), np.array(labels)


class TestEuclideanLSHIndex:
    def test_query_before_build_raises(self):
        with pytest.raises(NotFittedError):
            EuclideanLSHIndex().query(np.zeros(4))

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            EuclideanLSHIndex(num_tables=0)
        with pytest.raises(ValueError):
            EuclideanLSHIndex(bucket_width=0.0)

    def test_build_rejects_non_2d(self):
        with pytest.raises(ValueError):
            EuclideanLSHIndex().build(np.zeros(5))

    def test_keys_must_align(self):
        with pytest.raises(ValueError):
            EuclideanLSHIndex().build(np.zeros((3, 2)), keys=["a"])

    def test_exact_match_is_nearest(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        key, distance = index.query(vectors[5], k=1)[0]
        assert key == 5 and distance == pytest.approx(0.0)

    def test_neighbours_come_from_same_cluster(self, clustered_vectors):
        vectors, labels = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        for query_index in (0, 25, 45):
            neighbours = index.query(vectors[query_index], k=5)
            neighbour_labels = [labels[k] for k, _ in neighbours]
            assert all(l == labels[query_index] for l in neighbour_labels)

    def test_exclude_key(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        results = index.query(vectors[0], k=3, exclude=0)
        assert 0 not in [k for k, _ in results]

    def test_custom_keys_returned(self, clustered_vectors):
        vectors, _ = clustered_vectors
        keys = [f"id{i}" for i in range(len(vectors))]
        index = EuclideanLSHIndex(seed=1).build(vectors, keys)
        assert index.query(vectors[0], k=1)[0][0] == "id0"

    def test_distances_sorted_ascending(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        distances = [d for _, d in index.query(vectors[0], k=10)]
        assert distances == sorted(distances)

    def test_fallback_when_buckets_sparse(self):
        """With very few points, recall must not collapse (linear-scan fallback)."""
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(6, 4)) * 100
        index = EuclideanLSHIndex(bucket_width=0.01, seed=2).build(vectors)
        assert len(index.query(vectors[0], k=5)) == 5

    def test_query_batch(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        results = index.query_batch(vectors[:3], k=2)
        assert len(results) == 3 and all(len(r) == 2 for r in results)

    def test_bucket_statistics(self, clustered_vectors):
        vectors, _ = clustered_vectors
        index = EuclideanLSHIndex(seed=1).build(vectors)
        stats = index.bucket_statistics()
        assert stats["num_buckets"] >= 1 and stats["max_bucket_size"] >= stats["mean_bucket_size"]

    def test_size_property(self, clustered_vectors):
        vectors, _ = clustered_vectors
        assert EuclideanLSHIndex().build(vectors).size == len(vectors)
        assert EuclideanLSHIndex().size == 0
