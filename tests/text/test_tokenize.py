"""Tokenisation and normalisation behaviour."""

from repro.text import character_ngrams, normalize, sentence_of, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert tokenize("rock & roll, baby!") == ["rock", "roll", "baby"]

    def test_keeps_numbers(self):
        assert tokenize("route 66") == ["route", "66"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_alphanumeric_mix(self):
        assert tokenize("ipv6 3:00pm") == ["ipv6", "3", "00pm"]


class TestNormalize:
    def test_collapses_whitespace(self):
        assert normalize("a   b\t c") == "a b c"

    def test_removes_symbols(self):
        assert normalize("Caffè-Nero!") == "caff nero"

    def test_strips_edges(self):
        assert normalize("  hello  ") == "hello"


class TestCharacterNgrams:
    def test_padded_ngrams_include_boundaries(self):
        grams = character_ngrams("cat", 3, 3)
        assert "<ca" in grams and "at>" in grams

    def test_ngram_count(self):
        # "<cat>" has length 5 -> three 3-grams and two 4-grams.
        assert len(character_ngrams("cat", 3, 4)) == 5

    def test_short_token_returns_what_fits(self):
        grams = character_ngrams("ab", 3, 4, pad=False)
        assert grams == []

    def test_typo_preserves_most_ngrams(self):
        original = set(character_ngrams("restaurant", 3, 4))
        typo = set(character_ngrams("restaurent", 3, 4))
        overlap = len(original & typo) / len(original | typo)
        assert overlap > 0.4


class TestSentenceOf:
    def test_joins_non_empty(self):
        assert sentence_of(["a", "", "b"]) == "a b"

    def test_custom_separator(self):
        assert sentence_of(["a", "b"], separator=" | ") == "a | b"
