"""EmbDI relational embeddings and the IRGenerator facade."""

import numpy as np
import pytest

from repro.data.schema import Record, Table
from repro.exceptions import ConfigurationError, NotFittedError
from repro.text import EmbDIModel, IRGenerator
from repro.text.ir import IR_METHODS


@pytest.fixture(scope="module")
def small_tables():
    attributes = ("name", "city")
    left = Table("left", attributes, [
        Record("l0", ("golden dragon", "london")),
        Record("l1", ("blue terrace", "paris")),
        Record("l2", ("golden palace", "london")),
    ])
    right = Table("right", attributes, [
        Record("r0", ("golden dragon", "london")),
        Record("r1", ("river cafe", "berlin")),
    ])
    return [left, right]


class TestEmbDI:
    @pytest.fixture(scope="class")
    def model(self, small_tables):
        return EmbDIModel(dim=12, walks_per_node=2, walk_length=5, epochs=1, seed=3).fit(small_tables)

    def test_graph_contains_all_node_kinds(self, model):
        kinds = {data["kind"] for _, data in model.graph.nodes(data=True)}
        assert kinds == {"token", "row", "column"}

    def test_embed_sentence_shape(self, model):
        assert model.embed_sentence("golden dragon").shape == (12,)

    def test_tokens_sharing_structure_are_closer(self, model):
        embeddings = model.token_embeddings()
        # "golden" co-occurs with "dragon" in cells; "berlin" never does.
        def cosine(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12)
        assert cosine(embeddings["golden"], embeddings["dragon"]) > cosine(
            embeddings["golden"], embeddings["berlin"]
        )

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            EmbDIModel(dim=8).embed_sentence("x")

    def test_missing_values_skipped_in_graph(self):
        table = Table("t", ("a", "b"), [Record("r0", ("value", ""))])
        graph = EmbDIModel(dim=8).build_graph([table])
        token_nodes = [n for n, d in graph.nodes(data=True) if d["kind"] == "token"]
        assert token_nodes == ["tok::value"]


class TestIRGenerator:
    def test_all_methods_produce_correct_shapes(self, tiny_domain):
        task = tiny_domain.task
        for method in IR_METHODS:
            generator = IRGenerator(method=method, dim=16).fit(task)
            irs = generator.transform_table(task.left)
            assert irs.shape == (len(task.left), task.arity, 16), method

    def test_transform_record(self, tiny_domain):
        generator = IRGenerator(method="w2v", dim=16).fit(tiny_domain.task)
        record = tiny_domain.task.left.records()[0]
        assert generator.transform_record(record).shape == (tiny_domain.task.arity, 16)

    def test_transform_task_returns_both_sides(self, tiny_domain):
        generator = IRGenerator(method="w2v", dim=8).fit(tiny_domain.task)
        output = generator.transform_task(tiny_domain.task)
        assert set(output) == {"left", "right"}

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            IRGenerator(method="elmo")

    def test_invalid_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            IRGenerator(method="lsa", dim=0)

    def test_transform_before_fit_raises(self, tiny_domain):
        generator = IRGenerator(method="lsa", dim=8)
        with pytest.raises(NotFittedError):
            generator.transform_table(tiny_domain.task.left)

    def test_duplicates_closer_than_random_pairs(self, tiny_domain):
        """IRs must be similarity-preserving (the property the VAE amplifies)."""
        task = tiny_domain.task
        generator = IRGenerator(method="lsa", dim=16).fit(task)
        left = generator.transform_table(task.left).reshape(len(task.left), -1)
        right = generator.transform_table(task.right).reshape(len(task.right), -1)
        left_ids = task.left.record_ids()
        right_ids = task.right.record_ids()
        dup_distances, rand_distances = [], []
        rng = np.random.default_rng(0)
        for left_id, right_id in tiny_domain.duplicate_map.items():
            i, j = left_ids.index(left_id), right_ids.index(right_id)
            dup_distances.append(np.linalg.norm(left[i] - right[j]))
            rand_distances.append(np.linalg.norm(left[i] - right[rng.integers(0, len(right_ids))]))
        assert np.mean(dup_distances) < np.mean(rand_distances)

    def test_empty_values_list(self, tiny_domain):
        generator = IRGenerator(method="w2v", dim=8).fit(tiny_domain.task)
        assert generator.transform_values([]).shape == (0, 8)
