"""Hash embeddings, contextual (BERT-substitute) embeddings and word2vec."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.text import ContextualHashEmbedding, HashEmbedding, Word2Vec
from repro.text.tokenize import tokenize


class TestHashEmbedding:
    def test_deterministic(self):
        a = HashEmbedding(dim=16).embed_sentence("golden dragon palace")
        b = HashEmbedding(dim=16).embed_sentence("golden dragon palace")
        assert np.allclose(a, b)

    def test_dimension(self):
        assert HashEmbedding(dim=24).embed_sentence("hello").shape == (24,)

    def test_empty_sentence_is_zero(self):
        assert np.allclose(HashEmbedding(dim=8).embed_sentence(""), 0.0)

    def test_typo_stays_close(self):
        embedder = HashEmbedding(dim=32)
        original = embedder.embed_token("restaurant")
        typo = embedder.embed_token("restaurent")
        other = embedder.embed_token("telephone")
        assert np.linalg.norm(original - typo) < np.linalg.norm(original - other)

    def test_embed_sentences_stacks(self):
        matrix = HashEmbedding(dim=8).embed_sentences(["a b", "c d", "e"])
        assert matrix.shape == (3, 8)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            HashEmbedding(dim=0)


class TestContextualHashEmbedding:
    def test_word_order_matters(self):
        encoder = ContextualHashEmbedding(dim=32)
        a = encoder.embed_sentence("new york pizza")
        b = encoder.embed_sentence("pizza new york")
        assert not np.allclose(a, b)

    def test_plain_averaging_ignores_order(self):
        encoder = HashEmbedding(dim=32)
        a = encoder.embed_sentence("new york pizza")
        b = encoder.embed_sentence("pizza new york")
        assert np.allclose(a, b)

    def test_similar_sentences_still_close(self):
        encoder = ContextualHashEmbedding(dim=32)
        a = encoder.embed_sentence("charlie brown coldplay")
        b = encoder.embed_sentence("charlie brown coldplay 2011")
        c = encoder.embed_sentence("imperial stout bourbon barrel")
        assert np.linalg.norm(a - b) < np.linalg.norm(a - c)

    def test_empty_sentence_is_zero(self):
        assert np.allclose(ContextualHashEmbedding(dim=8).embed_sentence(""), 0.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ContextualHashEmbedding(dim=8, window=-1)


class TestWord2Vec:
    @pytest.fixture(scope="class")
    def corpus(self):
        sentences = []
        for _ in range(30):
            sentences.append("cat sits on the mat".split())
            sentences.append("dog sits on the rug".split())
            sentences.append("stocks rise on the market".split())
            sentences.append("shares fall on the market".split())
        return sentences

    @pytest.fixture(scope="class")
    def model(self, corpus):
        return Word2Vec(dim=16, window=2, epochs=2, seed=5).fit(corpus)

    def test_vector_shape(self, model):
        assert model.vector("cat").shape == (16,)

    def test_oov_returns_none(self, model):
        assert model.vector("zebra") is None

    def test_embed_tokens_averages(self, model):
        combined = model.embed_tokens(["cat", "dog"])
        manual = (model.vector("cat") + model.vector("dog")) / 2
        assert np.allclose(combined, manual)

    def test_embed_tokens_all_oov_is_zero(self, model):
        assert np.allclose(model.embed_tokens(["zebra", "qux"]), 0.0)

    def test_embeddings_mapping_complete(self, model):
        embeddings = model.embeddings()
        assert "market" in embeddings and embeddings["market"].shape == (16,)

    def test_most_similar_excludes_query(self, model):
        assert "cat" not in model.most_similar("cat", top_k=3)

    def test_distributional_similarity(self, model):
        # "cat" and "dog" share contexts; "cat" and "market" do not.
        def cosine(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12)
        sim_catdog = cosine(model.vector("cat"), model.vector("dog"))
        sim_catmarket = cosine(model.vector("cat"), model.vector("market"))
        assert sim_catdog > sim_catmarket

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            Word2Vec(dim=8).vector("cat")

    def test_empty_corpus_yields_empty_vocab(self):
        model = Word2Vec(dim=8).fit([])
        assert model.vocabulary is not None and len(model.vocabulary) == 0
