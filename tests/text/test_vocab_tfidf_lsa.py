"""Vocabulary, TF-IDF and LSA behaviour."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.text import LSAModel, TfidfVectorizer, Vocabulary
from repro.text.tokenize import tokenize

CORPUS = [
    "deep learning for entity resolution",
    "entity resolution with variational autoencoders",
    "deep generative models",
    "relational data integration and cleaning",
    "record matching and data cleaning",
]


class TestVocabulary:
    def test_fit_assigns_ids(self):
        vocab = Vocabulary().fit([tokenize(s) for s in CORPUS])
        assert len(vocab) > 0
        assert vocab.id_of("entity") is not None

    def test_min_count_filters(self):
        vocab = Vocabulary(min_count=2).fit([tokenize(s) for s in CORPUS])
        assert "entity" in vocab       # appears twice
        assert "variational" not in vocab  # appears once

    def test_max_size_caps(self):
        vocab = Vocabulary(max_size=3).fit([tokenize(s) for s in CORPUS])
        assert len(vocab) == 3

    def test_encode_drops_oov(self):
        vocab = Vocabulary().fit([tokenize(s) for s in CORPUS])
        assert vocab.encode(["entity", "unknowntoken"]) == [vocab.id_of("entity")]

    def test_idf_higher_for_rare_tokens(self):
        vocab = Vocabulary().fit([tokenize(s) for s in CORPUS])
        idf = vocab.idf()
        common = idf[vocab.id_of("entity")]
        rare = idf[vocab.id_of("variational")]
        assert rare > common

    def test_unigram_distribution_sums_to_one(self):
        vocab = Vocabulary().fit([tokenize(s) for s in CORPUS])
        assert np.isclose(vocab.unigram_distribution().sum(), 1.0)

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)


class TestTfidf:
    def test_shape(self):
        matrix = TfidfVectorizer().fit_transform(CORPUS)
        assert matrix.shape[0] == len(CORPUS)

    def test_rows_are_unit_norm(self):
        matrix = TfidfVectorizer().fit_transform(CORPUS)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_similar_sentences_have_higher_cosine(self):
        vectorizer = TfidfVectorizer()
        matrix = vectorizer.fit_transform(CORPUS)
        sim_related = matrix[0] @ matrix[1]     # share "entity resolution"
        sim_unrelated = matrix[0] @ matrix[3]
        assert sim_related > sim_unrelated

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TfidfVectorizer().transform(CORPUS)

    def test_empty_sentence_is_zero_vector(self):
        vectorizer = TfidfVectorizer().fit(CORPUS)
        assert np.allclose(vectorizer.transform([""])[0], 0.0)

    def test_char_ngrams_make_typos_similar(self):
        plain = TfidfVectorizer(include_char_ngrams=False).fit(CORPUS + ["variational"])
        chargrams = TfidfVectorizer(include_char_ngrams=True).fit(CORPUS + ["variational"])
        a_plain, b_plain = plain.transform(["variational", "variatonal"])
        a_char, b_char = chargrams.transform(["variational", "variatonal"])
        assert a_char @ b_char > a_plain @ b_plain

    def test_num_features_property(self):
        vectorizer = TfidfVectorizer().fit(CORPUS)
        assert vectorizer.num_features == len(vectorizer.vocabulary)


class TestLSA:
    def test_output_dim(self):
        model = LSAModel(dim=4).fit(CORPUS)
        assert model.transform(CORPUS).shape == (len(CORPUS), 4)

    def test_dim_padded_when_corpus_small(self):
        model = LSAModel(dim=50).fit(CORPUS)
        assert model.transform(["deep learning"]).shape == (1, 50)

    def test_similar_sentences_close(self):
        model = LSAModel(dim=4, include_char_ngrams=False).fit(CORPUS)
        vectors = model.transform(CORPUS)
        d_related = np.linalg.norm(vectors[0] - vectors[1])
        d_unrelated = np.linalg.norm(vectors[0] - vectors[3])
        assert d_related < d_unrelated

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LSAModel(dim=4).transform(CORPUS)

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            LSAModel(dim=4).fit([])

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            LSAModel(dim=0)

    def test_explained_dim_at_most_requested(self):
        model = LSAModel(dim=4).fit(CORPUS)
        assert model.explained_dim <= 4
