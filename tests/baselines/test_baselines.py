"""Baseline matchers: threshold, DeepER-, DeepMatcher- and DITTO-style."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINES,
    DeepERMatcher,
    DeepMatcherMatcher,
    DittoMatcher,
    ThresholdMatcher,
    jaccard,
    record_similarity,
    serialize_pair,
    serialize_record,
)
from repro.data.schema import Record
from repro.exceptions import NotFittedError


class TestJaccardPrimitives:
    def test_identical_strings(self):
        assert jaccard("golden dragon", "golden dragon") == 1.0

    def test_disjoint_strings(self):
        assert jaccard("alpha beta", "gamma delta") == 0.0

    def test_partial_overlap(self):
        assert jaccard("a b c", "b c d") == pytest.approx(0.5)

    def test_empty_strings(self):
        assert jaccard("", "") == 0.0

    def test_record_similarity_averages_attributes(self):
        left = Record("l", ("a b", "x"))
        right = Record("r", ("a b", "y"))
        assert record_similarity(left, right) == pytest.approx(0.5)


class TestSerialization:
    def test_serialize_record_format(self):
        record = Record("r", ("golden dragon", "london"))
        text = serialize_record(record, ("name", "city"))
        assert text == "COL name VAL golden dragon COL city VAL london"

    def test_serialize_pair_contains_separator(self):
        left, right = Record("l", ("a",)), Record("r", ("b",))
        assert "[SEP]" in serialize_pair(left, right, ("attr",))


class TestThresholdMatcher:
    def test_fit_and_evaluate(self, tiny_domain):
        matcher = ThresholdMatcher().fit(tiny_domain.task, tiny_domain.splits.train)
        metrics = matcher.evaluate(tiny_domain.task, tiny_domain.splits.test)
        assert metrics.f1 > 0.3

    def test_predict_before_fit_raises(self, tiny_domain):
        with pytest.raises(NotFittedError):
            ThresholdMatcher().predict_proba(tiny_domain.task, tiny_domain.splits.test.pairs())

    def test_threshold_in_range(self, tiny_domain):
        matcher = ThresholdMatcher().fit(tiny_domain.task, tiny_domain.splits.train)
        assert 0.0 < matcher.threshold < 1.0


class TestDeepBaselines:
    @pytest.fixture(scope="class", params=["deeper", "deepmatcher", "ditto"])
    def fitted(self, request, tiny_domain):
        kwargs = {
            "deeper": dict(embedding_dim=16, hidden_sizes=(24,), epochs=20),
            "deepmatcher": dict(embedding_dim=16, summary_dim=16, hidden_sizes=(32, 16), epochs=20),
            "ditto": dict(embedding_dim=24, hidden_sizes=(32,), epochs=20),
        }[request.param]
        matcher = BASELINES[request.param](**kwargs)
        matcher.fit(tiny_domain.task, tiny_domain.splits.train, tiny_domain.splits.validation)
        return request.param, matcher

    def test_training_reduces_loss(self, fitted):
        _, matcher = fitted
        assert matcher.training_history.improved()

    def test_probabilities_valid(self, fitted, tiny_domain):
        _, matcher = fitted
        probabilities = matcher.predict_proba(tiny_domain.task, tiny_domain.splits.test.pairs())
        assert probabilities.shape == (len(tiny_domain.splits.test),)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_beats_chance_on_test(self, fitted, tiny_domain):
        _, matcher = fitted
        metrics = matcher.evaluate(tiny_domain.task, tiny_domain.splits.test)
        assert metrics.f1 > 0.3

    def test_separates_training_classes(self, fitted, tiny_domain):
        _, matcher = fitted
        probabilities = matcher.predict_proba(tiny_domain.task, tiny_domain.splits.train.pairs())
        labels = tiny_domain.splits.train.labels()
        assert probabilities[labels == 1].mean() > probabilities[labels == 0].mean()

    def test_unfitted_raises(self, tiny_domain):
        for cls in (DeepERMatcher, DeepMatcherMatcher, DittoMatcher):
            with pytest.raises(NotFittedError):
                cls().predict_proba(tiny_domain.task, tiny_domain.splits.test.pairs())

    def test_registry_contains_all(self):
        assert set(BASELINES) == {"deeper", "deepmatcher", "ditto", "threshold"}
