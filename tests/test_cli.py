"""Command-line interface smoke tests (argument parsing and light commands)."""

import pytest

from repro.cli import _build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args([])

    def test_supervised_defaults(self):
        args = _build_parser().parse_args(["supervised"])
        assert args.domain == "restaurants" and args.ir == "lsa"

    def test_active_arguments(self):
        args = _build_parser().parse_args(["active", "--domain", "beer", "--budget", "30"])
        assert args.domain == "beer" and args.budget == 30

    def test_transfer_arguments(self):
        args = _build_parser().parse_args(["transfer", "--source", "crm", "--target", "music"])
        assert args.source == "crm" and args.target == "music"

    def test_invalid_ir_rejected(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["supervised", "--ir", "elmo"])

    def test_resolve_arguments(self):
        args = _build_parser().parse_args(["resolve", "--k", "5", "--batch-size", "128"])
        assert args.domain == "restaurants" and args.k == 5 and args.batch_size == 128
        assert args.workers == 1 and args.cache_dir is None  # defaults

    def test_resolve_sharding_arguments(self):
        args = _build_parser().parse_args(
            ["resolve", "--workers", "4", "--cache-dir", ".repro-cache"]
        )
        assert args.workers == 4 and args.cache_dir == ".repro-cache"

    def test_plan_arguments(self):
        args = _build_parser().parse_args(
            ["plan", "--domain", "music", "--workers", "4", "--shard-rows", "512"]
        )
        assert args.domain == "music" and args.workers == 4 and args.shard_rows == 512
        assert args.k == 10 and args.batch_size == 2048  # defaults


class TestCommands:
    def test_list_domains_prints_all_nine(self, capsys):
        assert main(["list-domains"]) == 0
        output = capsys.readouterr().out
        for name in ("restaurants", "citations2", "crm", "stocks"):
            assert name in output
        assert len(output.strip().splitlines()) == 9

    def test_plan_prints_stage_graph_without_training(self, capsys):
        """The plan subcommand fits no model: it must return in well under a
        training run's time and still print the full stage graph."""
        assert main([
            "plan", "--domain", "restaurants", "--scale", "0.3",
            "--workers", "4", "--shard-rows", "16", "--k", "5",
        ]) == 0
        output = capsys.readouterr().out
        for token in ("encode", "block", "score", "workers=4", "shard_rows=16"):
            assert token in output

    def test_plan_rejects_bad_arguments(self, capsys):
        assert main(["plan", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["plan", "--shard-rows", "-1"]) == 2
        assert "--shard-rows" in capsys.readouterr().err
