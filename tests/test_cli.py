"""Command-line interface smoke tests (argument parsing and light commands)."""

import pytest

from repro.cli import _build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args([])

    def test_supervised_defaults(self):
        args = _build_parser().parse_args(["supervised"])
        assert args.domain == "restaurants" and args.ir == "lsa"

    def test_active_arguments(self):
        args = _build_parser().parse_args(["active", "--domain", "beer", "--budget", "30"])
        assert args.domain == "beer" and args.budget == 30

    def test_transfer_arguments(self):
        args = _build_parser().parse_args(["transfer", "--source", "crm", "--target", "music"])
        assert args.source == "crm" and args.target == "music"

    def test_invalid_ir_rejected(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["supervised", "--ir", "elmo"])

    def test_resolve_arguments(self):
        args = _build_parser().parse_args(["resolve", "--k", "5", "--batch-size", "128"])
        assert args.domain == "restaurants" and args.k == 5 and args.batch_size == 128
        assert args.workers == 1 and args.cache_dir is None  # defaults

    def test_resolve_sharding_arguments(self):
        args = _build_parser().parse_args(
            ["resolve", "--workers", "4", "--cache-dir", ".repro-cache"]
        )
        assert args.workers == 4 and args.cache_dir == ".repro-cache"

    def test_plan_arguments(self):
        args = _build_parser().parse_args(
            ["plan", "--domain", "music", "--workers", "4", "--shard-rows", "512"]
        )
        assert args.domain == "music" and args.workers == 4 and args.shard_rows == 512
        assert args.k == 10 and args.batch_size == 2048  # defaults

    def test_resolve_incremental_arguments(self):
        args = _build_parser().parse_args(["resolve", "--incremental", "--append-rows", "96"])
        assert args.incremental is True and args.append_rows == 96
        defaults = _build_parser().parse_args(["resolve"])
        assert defaults.incremental is False and defaults.append_rows == 48

    def test_cache_arguments(self):
        args = _build_parser().parse_args(["cache", "list", "--cache-dir", ".enc"])
        assert args.action == "list" and args.cache_dir == ".enc"
        with pytest.raises(SystemExit):  # action is mandatory and closed
            _build_parser().parse_args(["cache", "defragment", "--cache-dir", ".enc"])
        with pytest.raises(SystemExit):  # --cache-dir is mandatory
            _build_parser().parse_args(["cache", "list"])


class TestCommands:
    def test_list_domains_prints_all_nine(self, capsys):
        assert main(["list-domains"]) == 0
        output = capsys.readouterr().out
        for name in ("restaurants", "citations2", "crm", "stocks"):
            assert name in output
        assert len(output.strip().splitlines()) == 9

    def test_plan_prints_stage_graph_without_training(self, capsys):
        """The plan subcommand fits no model: it must return in well under a
        training run's time and still print the full stage graph."""
        assert main([
            "plan", "--domain", "restaurants", "--scale", "0.3",
            "--workers", "4", "--shard-rows", "16", "--k", "5",
        ]) == 0
        output = capsys.readouterr().out
        for token in ("encode", "block", "score", "workers=4", "shard_rows=16"):
            assert token in output

    def test_plan_rejects_bad_arguments(self, capsys):
        assert main(["plan", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["plan", "--shard-rows", "-1"]) == 2
        assert "--shard-rows" in capsys.readouterr().err

    def test_resolve_rejects_bad_mutation_arguments(self, capsys):
        assert main(["resolve", "--incremental", "--append-rows", "-1"]) == 2
        assert "--append-rows" in capsys.readouterr().err
        assert main(["resolve", "--incremental", "--edit-rows", "-2"]) == 2
        assert "--edit-rows" in capsys.readouterr().err
        # --incremental with nothing to mutate has no second pass to run.
        assert main([
            "resolve", "--incremental", "--append-rows", "0",
            "--edit-rows", "0", "--delete-rows", "0",
        ]) == 2
        assert "--incremental" in capsys.readouterr().err


class TestCacheCommand:
    @staticmethod
    def _populate(cache_dir, versions=(1,)):
        """Write synthetic chunked entries (no model fitting needed)."""
        import numpy as np

        from repro.data.schema import Record, Table
        from repro.engine import PersistentEncodingCache, TableEncodings, row_range_crc

        cache = PersistentEncodingCache(cache_dir, chunk_rows=8)
        table = Table("clitask", ("a", "b"),
                      [Record(f"r{i}", (f"x{i}", f"y{i}")) for i in range(20)])
        rng = np.random.default_rng(0)
        keys = tuple(table.record_ids())
        encodings = TableEncodings(
            keys=keys,
            irs=rng.normal(size=(20, 2, 3)),
            mu=rng.normal(size=(20, 2, 3)),
            sigma=rng.normal(size=(20, 2, 3)),
            row_index={key: row for row, key in enumerate(keys)},
        )
        fingerprint = {
            "model": {"ir_method": "lsa", "ir_dim": 3, "hidden_dim": 4,
                      "latent_dim": 3, "seed": 1, "weights_crc": 42},
            "n_records": 20,
            "content_crc": row_range_crc(table, 0, 20),
        }
        for version in versions:
            cache.save("clitask", "right", version, fingerprint, encodings, table=table)
        return cache

    def test_cache_list_prints_entries(self, tmp_path, capsys):
        self._populate(tmp_path / "enc", versions=(1,))
        assert main(["cache", "list", "--cache-dir", str(tmp_path / "enc")]) == 0
        output = capsys.readouterr().out
        assert "clitask" in output and "right" in output and "chunked" in output
        assert "20" in output  # row count from the manifest

    def test_cache_list_empty_directory(self, tmp_path, capsys):
        assert main(["cache", "list", "--cache-dir", str(tmp_path / "nothing")]) == 0
        assert "no cache entries" in capsys.readouterr().out

    def test_cache_prune_removes_stale_generations(self, tmp_path, capsys):
        cache = self._populate(tmp_path / "enc", versions=(1, 2, 3))
        assert len(cache.entries()) == 3
        assert main(["cache", "prune", "--cache-dir", str(tmp_path / "enc")]) == 0
        assert "pruned 2 stale entr(ies)" in capsys.readouterr().out
        survivors = cache.describe_entries()
        assert [row["version"] for row in survivors] == [3]

    def test_cache_prune_dry_run_deletes_nothing(self, tmp_path, capsys):
        cache = self._populate(tmp_path / "enc", versions=(1, 2))
        assert len(cache.entries()) == 2
        assert main(["cache", "prune", "--cache-dir", str(tmp_path / "enc"), "--dry-run"]) == 0
        output = capsys.readouterr().out
        assert "would prune 1 stale entr(ies)" in output
        # Nothing was actually removed; a real prune then removes exactly it.
        assert len(cache.entries()) == 2
        assert main(["cache", "prune", "--cache-dir", str(tmp_path / "enc")]) == 0
        assert "pruned 1 stale entr(ies)" in capsys.readouterr().out
        assert [row["version"] for row in cache.describe_entries()] == [2]

    def test_cache_list_shows_chunks_generations_and_bytes(self, tmp_path, capsys):
        self._populate(tmp_path / "enc", versions=(1,))
        assert main(["cache", "list", "--cache-dir", str(tmp_path / "enc")]) == 0
        header = capsys.readouterr().out.splitlines()[0]
        for column in ("Chunks", "Generations", "Tombstones", "Bytes"):
            assert column in header


class TestServeParser:
    def test_serve_arguments(self):
        args = _build_parser().parse_args(
            ["serve", "--domain", "music", "--host", "0.0.0.0", "--port", "8123",
             "--k", "5", "--cache-dir", ".enc"]
        )
        assert args.domain == "music" and args.host == "0.0.0.0" and args.port == 8123
        assert args.k == 5 and args.cache_dir == ".enc"

    def test_serve_defaults(self):
        args = _build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 0
        assert args.k == 10 and args.batch_size == 2048 and args.cache_dir is None


class TestArgumentValidation:
    """The centralised positive-argument guard, across every subcommand."""

    @pytest.mark.parametrize("argv, flag", [
        (["serve", "--k", "0"], "--k"),
        (["serve", "--batch-size", "-5"], "--batch-size"),
        (["serve", "--workers", "0"], "--workers"),
        (["resolve", "--k", "-1"], "--k"),
        (["resolve", "--batch-size", "0"], "--batch-size"),
        (["resolve", "--workers", "-2"], "--workers"),
        (["plan", "--k", "0"], "--k"),
        (["plan", "--batch-size", "-1"], "--batch-size"),
    ])
    def test_non_positive_arguments_exit_2(self, argv, flag, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert f"error: {flag} must be positive" in err

    def test_serve_rejects_negative_port(self, capsys):
        assert main(["serve", "--port", "-1"]) == 2
        assert "--port must be non-negative" in capsys.readouterr().err


class TestWorkersEnvKnob:
    """``REPRO_ENGINE_WORKERS`` garbage must degrade to 1, never crash."""

    @pytest.mark.parametrize("raw", ["abc", "0", "-3", "", "  ", "1.5"])
    def test_garbage_degrades_to_one(self, raw, monkeypatch):
        from repro.cli import _default_workers

        monkeypatch.setenv("REPRO_ENGINE_WORKERS", raw)
        assert _default_workers() == 1

    def test_valid_value_respected(self, monkeypatch):
        from repro.cli import _default_workers

        monkeypatch.setenv("REPRO_ENGINE_WORKERS", " 4 ")
        assert _default_workers() == 4

    def test_unset_defaults_to_one(self, monkeypatch):
        from repro.cli import _default_workers

        monkeypatch.delenv("REPRO_ENGINE_WORKERS", raising=False)
        assert _default_workers() == 1

    def test_env_knob_feeds_parser_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "3")
        args = _build_parser().parse_args(["serve"])
        assert args.workers == 3
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "junk")
        args = _build_parser().parse_args(["resolve"])
        assert args.workers == 1
