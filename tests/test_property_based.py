"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.core.active.kde import GaussianKDE
from repro.core.active.sampler import entropy_of
from repro.core.distances import (
    mahalanobis_squared,
    wasserstein2_squared,
    wasserstein2_vector,
)
from repro.data.generators.corruption import CorruptionModel, random_typo
from repro.data.pairs import LabeledPair, PairSet
from repro.eval.metrics import precision_recall_f1
from repro.nn import binary_cross_entropy_with_logits, gaussian_kl_divergence
from repro.text.hash_embedding import HashEmbedding
from repro.text.tokenize import character_ngrams, tokenize

# Bounded float strategies keep the numerics well away from overflow.
finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
positive_floats = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)


def gaussian_params(dim):
    return st.tuples(
        st.lists(finite_floats, min_size=dim, max_size=dim),
        st.lists(positive_floats, min_size=dim, max_size=dim),
    )


class TestDistanceProperties:
    @given(gaussian_params(4), gaussian_params(4))
    @settings(max_examples=60, deadline=None)
    def test_wasserstein_nonnegative_and_symmetric(self, p, q):
        mu_p, sigma_p = np.array(p[0]), np.array(p[1])
        mu_q, sigma_q = np.array(q[0]), np.array(q[1])
        forward = wasserstein2_squared(mu_p, sigma_p, mu_q, sigma_q)
        backward = wasserstein2_squared(mu_q, sigma_q, mu_p, sigma_p)
        assert forward >= 0
        assert np.isclose(forward, backward)

    @given(gaussian_params(3))
    @settings(max_examples=40, deadline=None)
    def test_wasserstein_identity(self, p):
        mu, sigma = np.array(p[0]), np.array(p[1])
        assert np.isclose(wasserstein2_squared(mu, sigma, mu, sigma), 0.0)

    @given(gaussian_params(3), gaussian_params(3))
    @settings(max_examples=40, deadline=None)
    def test_vector_sum_equals_total(self, p, q):
        mu_p, sigma_p = np.array(p[0]), np.array(p[1])
        mu_q, sigma_q = np.array(q[0]), np.array(q[1])
        assert np.isclose(
            wasserstein2_vector(mu_p, sigma_p, mu_q, sigma_q).sum(),
            wasserstein2_squared(mu_p, sigma_p, mu_q, sigma_q),
        )

    @given(gaussian_params(4), gaussian_params(4))
    @settings(max_examples=40, deadline=None)
    def test_mahalanobis_nonnegative_symmetric(self, p, q):
        mu_p, sigma_p = np.array(p[0]), np.array(p[1])
        mu_q, sigma_q = np.array(q[0]), np.array(q[1])
        forward = mahalanobis_squared(mu_p, sigma_p, mu_q, sigma_q)
        assert forward >= 0
        assert np.isclose(forward, mahalanobis_squared(mu_q, sigma_q, mu_p, sigma_p), rtol=1e-6)


class TestLossProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=16), st.lists(positive_floats, min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_kl_divergence_nonnegative(self, mu, var):
        size = min(len(mu), len(var))
        mu_arr = np.array([mu[:size]])
        log_var_arr = np.log(np.array([var[:size]]))
        value = gaussian_kl_divergence(Tensor(mu_arr), Tensor(log_var_arr)).data
        assert value >= -1e-9

    @given(st.lists(finite_floats, min_size=1, max_size=16), st.lists(st.integers(0, 1), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_bce_with_logits_nonnegative(self, logits, labels):
        n = min(len(logits), len(labels))
        value = binary_cross_entropy_with_logits(
            Tensor(np.array(logits[:n])), Tensor(np.array(labels[:n], dtype=float))
        ).data
        assert value >= -1e-9 and np.isfinite(value)

    @given(st.lists(st.floats(min_value=1e-4, max_value=1 - 1e-4), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_entropy_bounds(self, probabilities):
        values = entropy_of(np.array(probabilities))
        assert np.all(values >= 0) and np.all(values <= np.log(2) + 1e-9)


class TestAutogradProperties:
    @given(st.lists(finite_floats, min_size=2, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_sum_gradient_is_ones(self, values):
        x = Tensor(np.array(values), requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, np.ones(len(values)))

    @given(st.lists(finite_floats, min_size=2, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_scaling_gradient(self, values):
        x = Tensor(np.array(values), requires_grad=True)
        (x * 3.0).sum().backward()
        assert np.allclose(x.grad, np.full(len(values), 3.0))

    @given(st.lists(finite_floats, min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_sigmoid_output_bounds(self, values):
        # In float64 sigmoid saturates to exactly 0/1 for |x| beyond ~37, so
        # the invariant is inclusive bounds plus finiteness.
        out = Tensor(np.array(values)).sigmoid().data
        assert np.all(out >= 0) and np.all(out <= 1) and np.isfinite(out).all()


class TestMetricsProperties:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=40), st.lists(st.integers(0, 1), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_prf_bounds(self, truth, predicted):
        n = min(len(truth), len(predicted))
        metrics = precision_recall_f1(truth[:n], predicted[:n])
        for value in (metrics.precision, metrics.recall, metrics.f1):
            assert 0.0 <= value <= 1.0

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_perfect_prediction_is_perfect(self, truth):
        metrics = precision_recall_f1(truth, truth)
        if sum(truth) > 0:
            assert metrics.f1 == 1.0


class TestPairSetProperties:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30), st.integers(0, 1)), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_counts_are_consistent(self, triples):
        pairs = PairSet(LabeledPair(f"l{a}", f"r{b}", label) for a, b, label in triples)
        assert pairs.num_positives() + pairs.num_negatives() == len(pairs)
        assert len(pairs.positives()) == pairs.num_positives()
        keys = [p.key() for p in pairs]
        assert len(keys) == len(set(keys))

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30), st.integers(0, 1)), min_size=4, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_split_partitions(self, triples):
        pairs = PairSet(LabeledPair(f"l{a}", f"r{b}", label) for a, b, label in triples)
        if len(pairs) < 2:
            return
        first, second = pairs.split(0.5, rng=np.random.default_rng(0))
        assert len(first) + len(second) == len(pairs)
        assert not ({p.key() for p in first} & {p.key() for p in second})


_word = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)


class TestTextProperties:
    @given(st.lists(_word, min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_tokenize_roundtrip_on_clean_words(self, words):
        sentence = " ".join(words)
        assert tokenize(sentence) == words

    @given(_word)
    @settings(max_examples=50, deadline=None)
    def test_char_ngrams_reconstructible_length(self, word):
        grams = character_ngrams(word, 3, 3)
        padded_length = len(word) + 2
        expected = max(0, padded_length - 2)
        assert len(grams) == expected

    @given(_word)
    @settings(max_examples=30, deadline=None)
    def test_hash_embedding_deterministic(self, word):
        a = HashEmbedding(dim=8).embed_token(word)
        b = HashEmbedding(dim=8).embed_token(word)
        assert np.allclose(a, b)

    @given(st.text(min_size=0, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_hash_embedding_always_finite(self, text):
        vector = HashEmbedding(dim=8).embed_sentence(text)
        assert vector.shape == (8,) and np.isfinite(vector).all()


class TestCorruptionProperties:
    @given(st.lists(_word, min_size=1, max_size=6), st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_corruption_returns_string(self, words, seed):
        model = CorruptionModel.noisy()
        value = " ".join(words)
        corrupted = model.corrupt_value(value, np.random.default_rng(seed))
        assert isinstance(corrupted, str)

    @given(_word, st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_typo_output_length_close(self, word, seed):
        result = random_typo(word, np.random.default_rng(seed))
        assert abs(len(result) - len(word)) <= 1


class TestKDEProperties:
    @given(st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=2, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_density_nonnegative_and_finite(self, samples):
        kde = GaussianKDE().fit(samples)
        grid = np.linspace(-15, 15, 30)
        values = kde.evaluate(grid)
        assert np.all(values >= 0) and np.all(np.isfinite(values))
