"""Configuration objects and Table III defaults."""

import pytest

from repro.config import (
    ActiveLearningConfig,
    BlockingConfig,
    ExperimentConfig,
    MatcherConfig,
    VAEConfig,
    VAERConfig,
)


class TestTableIIIDefaults:
    """The default configuration must reproduce Table III of the paper."""

    def test_vae_hidden_dimension(self):
        assert VAEConfig().hidden_dim == 200

    def test_vae_latent_dimension(self):
        assert VAEConfig().latent_dim == 100

    def test_matching_margin(self):
        assert MatcherConfig().margin == 0.5

    def test_al_samples_per_iteration(self):
        assert ActiveLearningConfig().samples_per_iteration == 10

    def test_al_top_neighbours(self):
        assert ActiveLearningConfig().top_neighbours == 10

    def test_learning_rate(self):
        assert VAEConfig().learning_rate == 0.001
        assert MatcherConfig().learning_rate == 0.001

    def test_paper_defaults_constructor(self):
        config = VAERConfig.paper_defaults()
        assert config.vae.hidden_dim == 200 and config.matcher.margin == 0.5


class TestValidation:
    def test_vae_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            VAEConfig(latent_dim=0)

    def test_vae_rejects_negative_kl_weight(self):
        with pytest.raises(ValueError):
            VAEConfig(kl_weight=-1.0)

    def test_matcher_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            MatcherConfig(margin=0.0)

    def test_matcher_requires_hidden_layers(self):
        with pytest.raises(ValueError):
            MatcherConfig(mlp_hidden=())

    def test_al_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            ActiveLearningConfig(samples_per_iteration=0)

    def test_al_rejects_bad_neighbours(self):
        with pytest.raises(ValueError):
            ActiveLearningConfig(top_neighbours=0)


class TestAggregateConfig:
    def test_to_dict_flattens(self):
        config = VAERConfig()
        flattened = config.to_dict()
        assert flattened["vae"]["latent_dim"] == 100
        assert flattened["ir_method"] == "lsa"

    def test_blocking_defaults(self):
        blocking = BlockingConfig()
        assert blocking.num_tables > 0 and blocking.bucket_width > 0

    def test_experiment_scaling(self):
        config = ExperimentConfig(scale=0.5)
        assert config.scaled(100) == 50
        assert config.scaled(10, minimum=20) == 20
