"""Shared fixtures for the test suite.

Expensive objects (generated domains, fitted representation models) are
session-scoped so the several hundred tests stay fast on CPU.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ActiveLearningConfig, MatcherConfig, VAEConfig
from repro.core.representation import EntityRepresentationModel
from repro.data.generators import DomainSpec, SyntheticDomainGenerator, load_domain
from repro.data.generators.base import compose, pick


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_vae_config() -> VAEConfig:
    """Tiny VAE configuration used across model tests."""
    return VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=4, batch_size=32, seed=3)


@pytest.fixture(scope="session")
def small_matcher_config() -> MatcherConfig:
    return MatcherConfig(epochs=25, mlp_hidden=(32, 16), seed=5)


@pytest.fixture(scope="session")
def small_al_config() -> ActiveLearningConfig:
    return ActiveLearningConfig(
        samples_per_iteration=8,
        top_neighbours=5,
        iterations=3,
        kde_samples_per_pair=25,
        bootstrap_positives=8,
        bootstrap_negatives=8,
        retrain_epochs=10,
        seed=11,
    )


def _tiny_entity(rng: np.random.Generator):
    """Entity factory for a minimal 3-attribute test domain."""
    pool_a = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
              "iota", "kappa", "lambda", "sigma", "omega", "nu", "xi", "pi"]
    pool_b = ["london", "paris", "berlin", "madrid", "rome", "vienna", "oslo", "dublin"]
    name = compose(rng, pool_a, 2, 3)
    city = pick(rng, pool_b)
    price = f"{rng.uniform(5, 200):.2f}"
    return (name, city, price)


@pytest.fixture(scope="session")
def tiny_domain():
    """A very small synthetic domain used by most model-level tests."""
    spec = DomainSpec(
        name="tinytest",
        attributes=("name", "city", "price"),
        entity_factory=_tiny_entity,
        clean=True,
        numeric_attributes=(False, False, True),
        left_size=40,
        right_size=36,
        overlap_fraction=0.6,
        train_size=60,
        valid_size=12,
        test_size=24,
        positive_fraction=0.3,
    )
    return SyntheticDomainGenerator(spec, seed=99).generate()


@pytest.fixture(scope="session")
def restaurants_domain():
    """The restaurants benchmark domain at reduced scale."""
    return load_domain("restaurants", scale=0.6)


@pytest.fixture(scope="session")
def tiny_representation(tiny_domain, small_vae_config):
    """A representation model fitted on the tiny domain (session-scoped)."""
    return EntityRepresentationModel(small_vae_config, ir_method="lsa").fit(tiny_domain.task)
