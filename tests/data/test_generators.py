"""Synthetic domain generators: Table II shape and ground-truth consistency."""

import numpy as np
import pytest

from repro.data.generators import (
    CLEAN_DOMAINS,
    DOMAIN_NAMES,
    NOISY_DOMAINS,
    SyntheticDomainGenerator,
    available_domains,
    domain_spec,
    load_domain,
)


class TestRegistry:
    def test_nine_domains_registered(self):
        assert len(available_domains()) == 9

    def test_clean_and_noisy_partition(self):
        assert set(CLEAN_DOMAINS) | set(NOISY_DOMAINS) == set(DOMAIN_NAMES)
        assert not set(CLEAN_DOMAINS) & set(NOISY_DOMAINS)

    def test_unknown_domain_raises(self):
        with pytest.raises(KeyError):
            domain_spec("nonexistent")

    def test_scaling_changes_sizes(self):
        base = domain_spec("restaurants")
        scaled = domain_spec("restaurants", scale=2.0)
        assert scaled.left_size == 2 * base.left_size

    def test_load_domain_is_deterministic(self):
        a = load_domain("beer", scale=0.5)
        b = load_domain("beer", scale=0.5)
        assert [r.values for r in a.task.left] == [r.values for r in b.task.left]
        assert [p.key() for p in a.splits.train] == [p.key() for p in b.splits.train]

    def test_different_seeds_differ(self):
        a = load_domain("beer", scale=0.5, seed=1)
        b = load_domain("beer", scale=0.5, seed=2)
        assert [r.values for r in a.task.left] != [r.values for r in b.task.left]


class TestGeneratedDomains:
    @pytest.fixture(scope="class", params=["restaurants", "citations1", "software", "music"])
    def domain(self, request):
        return load_domain(request.param, scale=0.5)

    def test_arity_matches_paper(self, domain):
        assert domain.task.arity == domain.spec.paper_stats.arity

    def test_tables_nonempty(self, domain):
        assert len(domain.task.left) > 0 and len(domain.task.right) > 0

    def test_splits_have_both_classes(self, domain):
        for split in (domain.splits.train, domain.splits.test):
            assert split.num_positives() > 0
            assert split.num_negatives() > 0

    def test_splits_are_disjoint(self, domain):
        train = {p.key() for p in domain.splits.train}
        valid = {p.key() for p in domain.splits.validation}
        test = {p.key() for p in domain.splits.test}
        assert not (train & valid) and not (train & test) and not (valid & test)

    def test_labels_match_ground_truth(self, domain):
        for pair in list(domain.splits.train)[:50]:
            assert domain.task.true_match(pair.left_id, pair.right_id) == bool(pair.label)

    def test_duplicate_map_is_consistent(self, domain):
        for left_id, right_id in list(domain.duplicate_map.items())[:30]:
            assert domain.task.true_match(left_id, right_id)

    def test_pair_ids_resolve(self, domain):
        for pair in list(domain.splits.test)[:30]:
            assert pair.left_id in domain.task.left
            assert pair.right_id in domain.task.right


class TestCleanVsNoisy:
    def test_noisy_domains_have_more_missing_values(self):
        clean = load_domain("restaurants", scale=0.5)
        noisy = load_domain("software", scale=0.5)
        assert noisy.task.right.missing_rate() > clean.task.right.missing_rate()

    def test_clean_flag_matches_table2(self):
        assert load_domain("citations1", scale=0.5).task.clean
        assert not load_domain("beer", scale=0.5).task.clean

    def test_paper_stats_recorded(self):
        domain = load_domain("stocks", scale=0.5)
        assert domain.spec.paper_stats.cardinality == (2768, 21863)


class TestHardNegatives:
    def test_train_contains_similar_nonduplicates(self):
        """Negatives should include textually overlapping pairs (Table I style)."""
        domain = load_domain("music", scale=0.6)
        overlaps = []
        for pair in domain.splits.train.negatives():
            left = set(domain.task.left[pair.left_id].text().lower().split())
            right = set(domain.task.right[pair.right_id].text().lower().split())
            if left and right:
                overlaps.append(len(left & right) / len(left | right))
        assert max(overlaps) > 0.15
