"""Synthetic domain generators: Table II shape and ground-truth consistency."""

import numpy as np
import pytest

from repro.data.generators import (
    CLEAN_DOMAINS,
    DOMAIN_NAMES,
    NOISY_DOMAINS,
    SyntheticDomainGenerator,
    append_rows,
    available_domains,
    delete_rows,
    domain_spec,
    load_domain,
    mutate_rows,
)


class TestRegistry:
    def test_nine_domains_registered(self):
        assert len(available_domains()) == 9

    def test_clean_and_noisy_partition(self):
        assert set(CLEAN_DOMAINS) | set(NOISY_DOMAINS) == set(DOMAIN_NAMES)
        assert not set(CLEAN_DOMAINS) & set(NOISY_DOMAINS)

    def test_unknown_domain_raises(self):
        with pytest.raises(KeyError):
            domain_spec("nonexistent")

    def test_scaling_changes_sizes(self):
        base = domain_spec("restaurants")
        scaled = domain_spec("restaurants", scale=2.0)
        assert scaled.left_size == 2 * base.left_size

    def test_load_domain_is_deterministic(self):
        a = load_domain("beer", scale=0.5)
        b = load_domain("beer", scale=0.5)
        assert [r.values for r in a.task.left] == [r.values for r in b.task.left]
        assert [p.key() for p in a.splits.train] == [p.key() for p in b.splits.train]

    def test_different_seeds_differ(self):
        a = load_domain("beer", scale=0.5, seed=1)
        b = load_domain("beer", scale=0.5, seed=2)
        assert [r.values for r in a.task.left] != [r.values for r in b.task.left]


class TestGeneratedDomains:
    @pytest.fixture(scope="class", params=["restaurants", "citations1", "software", "music"])
    def domain(self, request):
        return load_domain(request.param, scale=0.5)

    def test_arity_matches_paper(self, domain):
        assert domain.task.arity == domain.spec.paper_stats.arity

    def test_tables_nonempty(self, domain):
        assert len(domain.task.left) > 0 and len(domain.task.right) > 0

    def test_splits_have_both_classes(self, domain):
        for split in (domain.splits.train, domain.splits.test):
            assert split.num_positives() > 0
            assert split.num_negatives() > 0

    def test_splits_are_disjoint(self, domain):
        train = {p.key() for p in domain.splits.train}
        valid = {p.key() for p in domain.splits.validation}
        test = {p.key() for p in domain.splits.test}
        assert not (train & valid) and not (train & test) and not (valid & test)

    def test_labels_match_ground_truth(self, domain):
        for pair in list(domain.splits.train)[:50]:
            assert domain.task.true_match(pair.left_id, pair.right_id) == bool(pair.label)

    def test_duplicate_map_is_consistent(self, domain):
        for left_id, right_id in list(domain.duplicate_map.items())[:30]:
            assert domain.task.true_match(left_id, right_id)

    def test_pair_ids_resolve(self, domain):
        for pair in list(domain.splits.test)[:30]:
            assert pair.left_id in domain.task.left
            assert pair.right_id in domain.task.right


class TestCleanVsNoisy:
    def test_noisy_domains_have_more_missing_values(self):
        clean = load_domain("restaurants", scale=0.5)
        noisy = load_domain("software", scale=0.5)
        assert noisy.task.right.missing_rate() > clean.task.right.missing_rate()

    def test_clean_flag_matches_table2(self):
        assert load_domain("citations1", scale=0.5).task.clean
        assert not load_domain("beer", scale=0.5).task.clean

    def test_paper_stats_recorded(self):
        domain = load_domain("stocks", scale=0.5)
        assert domain.spec.paper_stats.cardinality == (2768, 21863)


class TestHardNegatives:
    def test_train_contains_similar_nonduplicates(self):
        """Negatives should include textually overlapping pairs (Table I style)."""
        domain = load_domain("music", scale=0.6)
        overlaps = []
        for pair in domain.splits.train.negatives():
            left = set(domain.task.left[pair.left_id].text().lower().split())
            right = set(domain.task.right[pair.right_id].text().lower().split())
            if left and right:
                overlaps.append(len(left & right) / len(left | right))
        assert max(overlaps) > 0.15


class TestAppendRows:
    """Deterministic in-place table growth for incremental-resolution tests."""

    def test_extends_table_in_place_with_valid_records(self):
        domain = load_domain("restaurants", scale=0.3)
        before = len(domain.task.right)
        ids_before = set(domain.task.right.record_ids())
        appended = append_rows(domain, side="right", rows=12)
        assert len(domain.task.right) == before + 12
        assert len(appended) == 12
        for record in appended:
            assert record.record_id in domain.task.right
            assert record.record_id not in ids_before
            assert len(record.values) == domain.task.arity
            assert record.entity_id is not None
        # Record ids continue the existing numbering.
        assert appended[0].record_id == f"r{before}"

    def test_deterministic_across_identical_domains(self):
        one = load_domain("beer", scale=0.3)
        two = load_domain("beer", scale=0.3)
        first = append_rows(one, side="right", rows=8)
        second = append_rows(two, side="right", rows=8)
        assert [(r.record_id, r.values) for r in first] == [
            (r.record_id, r.values) for r in second
        ]
        # Successive appends to one domain draw fresh rows (seeded by size).
        third = append_rows(one, side="right", rows=8)
        assert [r.record_id for r in third] != [r.record_id for r in first]
        assert [r.values for r in third] != [r.values for r in first]

    def test_left_side_and_explicit_seed(self):
        domain = load_domain("music", scale=0.3)
        before = len(domain.task.left)
        with_seed = append_rows(domain, side="left", rows=5, seed=123)
        assert with_seed[0].record_id == f"l{before}"
        assert len(domain.task.left) == before + 5
        # Ground-truth queries still work on the grown task.
        assert domain.task.true_match(with_seed[0].record_id, domain.task.right.record_ids()[0]) is False

    def test_new_entities_add_no_duplicates(self):
        """Appended rows are fresh entities: the duplicate map is untouched and
        no new cross-table match is introduced."""
        domain = load_domain("crm", scale=0.3)
        duplicate_map = dict(domain.duplicate_map)
        appended = append_rows(domain, side="right", rows=6)
        assert domain.duplicate_map == duplicate_map
        left_entities = {r.entity_id for r in domain.task.left}
        assert all(r.entity_id not in left_entities for r in appended)

    def test_validation(self):
        domain = load_domain("restaurants", scale=0.3)
        with pytest.raises(ValueError):
            append_rows(domain, side="middle", rows=3)
        with pytest.raises(ValueError):
            append_rows(domain, rows=0)


class TestMutateAndDeleteRows:
    def test_mutate_edits_in_place_keeping_ids_and_positions(self):
        domain = load_domain("restaurants", scale=0.3)
        table = domain.task.right
        before = {r.record_id: r.values for r in table}
        ids_before = table.record_ids()
        edited = mutate_rows(domain, side="right", rows=6)
        assert len(edited) == 6
        assert table.record_ids() == ids_before, "edits must not move rows"
        for record in edited:
            assert record.values != before[record.record_id]
            assert table[record.record_id].values == record.values

    def test_delete_removes_and_shifts(self):
        domain = load_domain("beer", scale=0.3)
        table = domain.task.right
        n = len(table)
        removed = delete_rows(domain, side="right", rows=4)
        assert len(table) == n - 4
        for record in removed:
            assert record.record_id not in table
        # Remaining order is the original order minus the removed ids.
        survivors = [r for r in table.record_ids()]
        assert survivors == [
            rid for rid in survivors if rid not in {r.record_id for r in removed}
        ]

    def test_deterministic_across_identical_domains(self):
        one = load_domain("music", scale=0.3)
        two = load_domain("music", scale=0.3)
        assert [(r.record_id, r.values) for r in mutate_rows(one, rows=5)] == [
            (r.record_id, r.values) for r in mutate_rows(two, rows=5)
        ]
        assert [r.record_id for r in delete_rows(one, rows=3)] == [
            r.record_id for r in delete_rows(two, rows=3)
        ]
        # Successive mutations differ (seeded by size and revision).
        first = mutate_rows(one, rows=5)
        second = mutate_rows(one, rows=5)
        assert [(r.record_id, r.values) for r in first] != [
            (r.record_id, r.values) for r in second
        ]

    def test_append_after_delete_never_collides_or_resurrects(self):
        domain = load_domain("crm", scale=0.3)
        removed = delete_rows(domain, side="right", rows=5)
        appended = append_rows(domain, side="right", rows=10)
        ids = domain.task.right.record_ids()
        assert len(ids) == len(set(ids))
        assert {r.record_id for r in appended} <= set(ids)
        # Deleted ids stay dead: appends never re-issue them to new entities.
        assert {r.record_id for r in removed}.isdisjoint(r.record_id for r in appended)

    def test_append_never_reissues_a_deleted_trailing_id(self):
        """A deleted trailing row leaves no trace in the table itself; the
        high-water mark recorded by delete_rows must remember it anyway."""
        domain = load_domain("software", scale=0.3)
        table = domain.task.right
        last_id = table.record_ids()[-1]
        delete_rows(domain, side="right", rows=1)  # records the issue mark
        if last_id in table:
            table.remove(last_id)  # now erase the trailing row itself
        appended = append_rows(domain, side="right", rows=3)
        assert last_id not in {r.record_id for r in appended}
        assert last_id not in table

    def test_validation(self):
        domain = load_domain("stocks", scale=0.3)
        with pytest.raises(ValueError):
            mutate_rows(domain, side="middle", rows=2)
        with pytest.raises(ValueError):
            mutate_rows(domain, rows=0)
        with pytest.raises(ValueError):
            mutate_rows(domain, rows=len(domain.task.right) + 1)
        with pytest.raises(ValueError):
            delete_rows(domain, rows=len(domain.task.right))  # table must survive
