"""Labeled pair sets and CSV persistence."""

import numpy as np
import pytest

from repro.data import (
    DatasetSplits,
    LabeledPair,
    PairSet,
    read_pairs,
    read_table,
    write_pairs,
    write_table,
)
from repro.data.schema import MISSING, Record, Table
from repro.exceptions import SchemaError


def _pairs(n_pos=3, n_neg=5):
    pairs = [LabeledPair(f"l{i}", f"r{i}", 1) for i in range(n_pos)]
    pairs += [LabeledPair(f"l{i}", f"r{i + 100}", 0) for i in range(n_neg)]
    return PairSet(pairs)


class TestLabeledPair:
    def test_invalid_label_rejected(self):
        with pytest.raises(SchemaError):
            LabeledPair("a", "b", 2)

    def test_key(self):
        assert LabeledPair("a", "b", 1).key() == ("a", "b")


class TestPairSet:
    def test_deduplicates_on_key(self):
        pairs = PairSet()
        assert pairs.add(LabeledPair("a", "b", 1))
        assert not pairs.add(LabeledPair("a", "b", 0))
        assert len(pairs) == 1

    def test_counts(self):
        pairs = _pairs()
        assert pairs.num_positives() == 3
        assert pairs.num_negatives() == 5
        assert pairs.positive_rate() == pytest.approx(3 / 8)

    def test_positives_negatives_views(self):
        pairs = _pairs()
        assert all(p.label == 1 for p in pairs.positives())
        assert all(p.label == 0 for p in pairs.negatives())

    def test_labels_array(self):
        labels = _pairs(2, 2).labels()
        assert labels.tolist() == [1, 1, 0, 0]

    def test_merge_deduplicates(self):
        a, b = _pairs(2, 2), _pairs(2, 2)
        assert len(a.merge(b)) == len(a)

    def test_shuffled_preserves_content(self):
        pairs = _pairs()
        shuffled = pairs.shuffled(np.random.default_rng(0))
        assert {p.key() for p in shuffled} == {p.key() for p in pairs}

    def test_split_is_disjoint_and_stratified(self):
        pairs = _pairs(10, 30)
        first, second = pairs.split(0.5, rng=np.random.default_rng(0))
        assert len(first) + len(second) == len(pairs)
        assert not ({p.key() for p in first} & {p.key() for p in second})
        assert first.num_positives() == 5

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            _pairs().split(1.5)

    def test_head(self):
        assert len(_pairs().head(4)) == 4

    def test_contains(self):
        pairs = _pairs()
        assert ("l0", "r0") in pairs

    def test_empty_positive_rate(self):
        assert PairSet().positive_rate() == 0.0


class TestDatasetSplits:
    def test_sizes_and_summary(self):
        splits = DatasetSplits(train=_pairs(4, 6), validation=_pairs(1, 2), test=_pairs(2, 3))
        assert splits.sizes() == (10, 3, 5)
        assert "train=10" in splits.summary()


class TestCSVRoundTrips:
    def test_table_roundtrip(self, tmp_path):
        table = Table("demo", ("name", "city"), [
            Record("r0", ("golden dragon", "london"), "e0"),
            Record("r1", ("blue cafe", MISSING), "e1"),
        ])
        path = tmp_path / "table.csv"
        write_table(table, path, include_entity_ids=True)
        loaded = read_table(path)
        assert loaded.attributes == ("name", "city")
        assert loaded["r1"].is_missing(1)
        assert loaded["r0"].entity_id == "e0"

    def test_table_roundtrip_without_entities(self, tmp_path):
        table = Table("demo", ("name",), [Record("r0", ("x",))])
        path = tmp_path / "t.csv"
        write_table(table, path)
        assert read_table(path)["r0"].entity_id is None

    def test_read_table_rejects_missing_id_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name,city\na,b\n")
        with pytest.raises(SchemaError):
            read_table(path)

    def test_read_table_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_table(path)

    def test_pairs_roundtrip(self, tmp_path):
        path = tmp_path / "pairs.csv"
        write_pairs(_pairs(2, 3), path)
        loaded = read_pairs(path)
        assert len(loaded) == 5 and loaded.num_positives() == 2

    def test_read_pairs_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,z\n")
        with pytest.raises(SchemaError):
            read_pairs(path)
