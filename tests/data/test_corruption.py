"""Corruption model behaviour (the clean † vs noisy ‡ distinction)."""

import numpy as np
import pytest

from repro.data.generators.corruption import (
    CorruptionModel,
    abbreviate,
    change_case,
    drop_token,
    random_typo,
    reorder_tokens,
)
from repro.data.schema import MISSING


@pytest.fixture
def crng():
    return np.random.default_rng(7)


class TestPrimitives:
    def test_typo_changes_string(self, crng):
        changed = sum(random_typo("restaurant", crng) != "restaurant" for _ in range(20))
        assert changed >= 18  # deletions/substitutions virtually always alter the token

    def test_typo_leaves_short_tokens(self, crng):
        assert random_typo("a", crng) == "a"

    def test_abbreviate_shortens(self, crng):
        abbreviated = abbreviate("university", crng)
        assert len(abbreviated.rstrip(".")) < len("university")

    def test_abbreviate_leaves_short_tokens(self, crng):
        assert abbreviate("of", crng) == "of"

    def test_drop_token_removes_one(self, crng):
        assert len(drop_token(["a", "b", "c"], crng)) == 2

    def test_drop_token_keeps_single(self, crng):
        assert drop_token(["only"], crng) == ["only"]

    def test_reorder_swaps_adjacent(self, crng):
        tokens = ["a", "b", "c", "d"]
        reordered = reorder_tokens(tokens, crng)
        assert sorted(reordered) == sorted(tokens) and reordered != tokens or len(tokens) <= 1

    def test_change_case(self, crng):
        assert change_case("hello world", crng).lower() == "hello world"


class TestCorruptionModel:
    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            CorruptionModel(typo_rate=1.5)

    def test_missing_value_stays_missing(self, crng):
        assert CorruptionModel().corrupt_value(MISSING, crng) == MISSING

    def test_noisy_introduces_more_missing_than_clean(self):
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        clean, noisy = CorruptionModel.clean(), CorruptionModel.noisy()
        values = ["some attribute value with several tokens"] * 400
        clean_missing = sum(clean.corrupt_value(v, rng_a) == MISSING for v in values)
        noisy_missing = sum(noisy.corrupt_value(v, rng_b) == MISSING for v in values)
        assert noisy_missing > clean_missing

    def test_clean_preserves_most_tokens(self, crng):
        model = CorruptionModel.clean()
        value = "the golden dragon palace restaurant london"
        preserved = []
        for _ in range(50):
            corrupted = model.corrupt_value(value, crng)
            original_tokens = set(value.split())
            corrupted_tokens = set(corrupted.lower().split())
            preserved.append(len(original_tokens & corrupted_tokens) / len(original_tokens))
        assert np.mean(preserved) > 0.7

    def test_numeric_jitter_produces_number(self, crng):
        model = CorruptionModel(numeric_jitter_rate=1.0, missing_rate=0.0)
        corrupted = model.corrupt_value("100", crng, numeric=True)
        float(corrupted)  # must still parse as a number

    def test_numeric_fallback_for_non_numeric(self, crng):
        model = CorruptionModel(missing_rate=0.0)
        corrupted = model.corrupt_value("not-a-number", crng, numeric=True)
        assert isinstance(corrupted, str)

    def test_corrupt_record_values_length(self, crng):
        model = CorruptionModel.clean()
        values = ["a b c", "123", "x"]
        corrupted = model.corrupt_record_values(values, crng, [False, True, False])
        assert len(corrupted) == 3

    def test_corruption_is_reproducible_with_seeded_rng(self):
        model = CorruptionModel.noisy()
        a = model.corrupt_value("hello there general", np.random.default_rng(5))
        b = model.corrupt_value("hello there general", np.random.default_rng(5))
        assert a == b
