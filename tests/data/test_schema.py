"""Record, Table and ERTask schema invariants."""

import numpy as np
import pytest

from repro.data.schema import MISSING, ERTask, Record, Table
from repro.exceptions import SchemaError


def _table(name="t", n=3):
    return Table(name, ("a", "b"), [Record(f"r{i}", (f"v{i}", f"w{i}"), f"e{i}") for i in range(n)])


class TestRecord:
    def test_value_access(self):
        record = Record("r1", ("x", "y"))
        assert record.value(1) == "y"

    def test_missing_detection(self):
        record = Record("r1", ("x", MISSING))
        assert record.is_missing(1) and not record.is_missing(0)

    def test_text_skips_missing(self):
        assert Record("r1", ("a", MISSING, "b")).text() == "a b"

    def test_records_are_hashable_and_frozen(self):
        record = Record("r1", ("x",))
        with pytest.raises(AttributeError):
            record.record_id = "other"


class TestTable:
    def test_requires_attributes(self):
        with pytest.raises(SchemaError):
            Table("t", ())

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            Table("t", ("a", "a"))

    def test_add_and_lookup(self):
        table = _table()
        assert table["r1"].values == ("v1", "w1")
        assert "r2" in table and "missing" not in table

    def test_rejects_wrong_arity(self):
        table = _table()
        with pytest.raises(SchemaError):
            table.add(Record("bad", ("only-one",)))

    def test_rejects_duplicate_ids(self):
        table = _table()
        with pytest.raises(SchemaError):
            table.add(Record("r0", ("x", "y")))

    def test_replace_keeps_position_and_bumps_revision(self):
        table = _table()
        revision = table.revision
        previous = table.replace(Record("r1", ("edited", "values")))
        assert previous.values == ("v1", "w1")
        assert table["r1"].values == ("edited", "values")
        assert table.record_ids() == ["r0", "r1", "r2"], "edits must not move rows"
        assert table.revision == revision + 1
        with pytest.raises(SchemaError):
            table.replace(Record("r1", ("wrong-arity",)))
        with pytest.raises(KeyError):
            table.replace(Record("missing", ("x", "y")))

    def test_remove_shifts_later_rows(self):
        table = _table()
        revision = table.revision
        removed = table.remove("r1")
        assert removed.record_id == "r1"
        assert table.record_ids() == ["r0", "r2"]
        assert table["r2"].values == ("v2", "w2")  # index rebuilt correctly
        assert "r1" not in table and len(table) == 2
        assert table.revision == revision + 1
        with pytest.raises(KeyError):
            table.remove("r1")
        # A removed id can be re-issued (delete + re-add semantics).
        table.add(Record("r1", ("new", "row")))
        assert table.record_ids() == ["r0", "r2", "r1"]

    def test_revision_counts_every_mutation(self):
        table = Table("t", ("a", "b"))
        assert table.revision == 0
        table.add(Record("r0", ("x", "y")))
        table.add(Record("r1", ("x", "y")))
        assert table.revision == 2
        table.replace(Record("r0", ("z", "y")))
        table.remove("r1")
        assert table.revision == 4

    def test_attribute_values(self):
        assert _table().attribute_values("a") == ["v0", "v1", "v2"]

    def test_attribute_values_unknown_attribute(self):
        with pytest.raises(SchemaError):
            _table().attribute_values("nope")

    def test_missing_rate(self):
        table = Table("t", ("a", "b"), [Record("r0", ("x", MISSING)), Record("r1", (MISSING, MISSING))])
        assert table.missing_rate() == pytest.approx(3 / 4)

    def test_missing_rate_empty_table(self):
        assert Table("t", ("a",)).missing_rate() == 0.0

    def test_sample(self):
        table = _table(n=10)
        sampled = table.sample(4, np.random.default_rng(0))
        assert len(sampled) == 4 and sampled.attributes == table.attributes

    def test_project_truncates(self):
        projected = _table().project(1)
        assert projected.arity == 1
        assert projected.records()[0].values == ("v0",)

    def test_project_pads(self):
        projected = _table().project(4)
        assert projected.arity == 4
        assert projected.records()[0].values == ("v0", "w0", MISSING, MISSING)

    def test_project_preserves_entity_ids(self):
        assert _table().project(1).records()[0].entity_id == "e0"

    def test_project_invalid_arity(self):
        with pytest.raises(SchemaError):
            _table().project(0)


class TestERTask:
    def _task(self):
        left = _table("left")
        right = Table("right", ("a", "b"), [Record("s0", ("v0", "w0"), "e0"), Record("s1", ("z", "z"), "e9")])
        return ERTask("demo", left, right)

    def test_arity_mismatch_rejected(self):
        left = _table("left")
        right = Table("right", ("a",), [Record("s0", ("v0",))])
        with pytest.raises(SchemaError):
            ERTask("demo", left, right)

    def test_cardinality(self):
        assert self._task().cardinality == (3, 2)

    def test_record_lookup_by_side(self):
        task = self._task()
        assert task.record("left", "r0").record_id == "r0"
        assert task.record("right", "s1").record_id == "s1"
        with pytest.raises(ValueError):
            task.record("middle", "r0")

    def test_true_match_uses_entity_ids(self):
        task = self._task()
        assert task.true_match("r0", "s0")
        assert not task.true_match("r1", "s0")

    def test_true_match_without_entity_ids_raises(self):
        left = Table("left", ("a",), [Record("r0", ("x",))])
        right = Table("right", ("a",), [Record("s0", ("x",))])
        task = ERTask("demo", left, right)
        with pytest.raises(SchemaError):
            task.true_match("r0", "s0")

    def test_all_records_tagged_by_side(self):
        sides = {side for side, _ in self._task().all_records()}
        assert sides == {"left", "right"}

    def test_project_applies_to_both_tables(self):
        projected = self._task().project(1)
        assert projected.left.arity == 1 and projected.right.arity == 1
