"""Experiment harness and paper-style table formatting."""

import numpy as np
import pytest

from repro.eval import reporting
from repro.eval.harness import (
    ActiveLearningRow,
    HarnessConfig,
    MatchingRow,
    TransferRow,
    active_learning_experiment,
    fit_representation,
    matching_experiment,
    raw_ir_neighbour_map,
    recall_at_k_experiment,
    representation_experiment,
    run_baseline_matching,
    run_vaer_matching,
    transfer_experiment,
    vaer_neighbour_map,
)
from repro.eval.metrics import PRF


@pytest.fixture(scope="module")
def harness_config():
    return HarnessConfig(
        ir_dim=16, hidden_dim=24, latent_dim=8, vae_epochs=4,
        matcher_epochs=15, al_retrain_epochs=8, top_k=5, seed=3,
    )


@pytest.fixture(scope="module")
def tiny_representation_for_harness(tiny_domain, harness_config):
    model, seconds = fit_representation(tiny_domain, harness_config)
    return model, seconds


class TestHarnessConfig:
    def test_derived_configs_consistent(self, harness_config):
        assert harness_config.vae_config().latent_dim == harness_config.latent_dim
        assert harness_config.matcher_config().epochs == harness_config.matcher_epochs
        assert harness_config.al_config().retrain_epochs == harness_config.al_retrain_epochs
        assert harness_config.vaer_config("w2v").ir_method == "w2v"


class TestRepresentationExperiment:
    def test_fit_representation_times(self, tiny_representation_for_harness):
        _, seconds = tiny_representation_for_harness
        assert seconds > 0

    def test_neighbour_maps_cover_all_left_records(self, tiny_domain, harness_config, tiny_representation_for_harness):
        model, _ = tiny_representation_for_harness
        raw = raw_ir_neighbour_map(tiny_domain, "w2v", harness_config)
        vaer = vaer_neighbour_map(tiny_domain, model, harness_config)
        assert set(raw) == set(tiny_domain.task.left.record_ids())
        assert set(vaer) == set(tiny_domain.task.left.record_ids())

    def test_representation_experiment_structure(self, tiny_domain, harness_config):
        results = representation_experiment(tiny_domain, harness_config, ir_methods=("w2v",), k=5)
        assert set(results) == {"w2v"}
        assert set(results["w2v"]) == {"raw", "vaer"}
        assert 0.0 <= results["w2v"]["vaer"].recall <= 1.0

    def test_recall_curve_monotone_in_k(self, tiny_domain, harness_config, tiny_representation_for_harness):
        model, _ = tiny_representation_for_harness
        curve = recall_at_k_experiment(tiny_domain, harness_config, ks=(2, 5, 10), representation=model)
        assert curve[2] <= curve[5] <= curve[10]


class TestMatchingExperiment:
    def test_vaer_row(self, tiny_domain, harness_config, tiny_representation_for_harness):
        model, _ = tiny_representation_for_harness
        row = run_vaer_matching(tiny_domain, harness_config, representation=model)
        assert row.system == "vaer"
        assert 0.0 <= row.metrics.f1 <= 1.0
        assert row.matching_seconds > 0

    def test_baseline_row(self, tiny_domain):
        row = run_baseline_matching(tiny_domain, "threshold")
        assert row.system == "threshold" and row.matching_seconds >= 0

    def test_matching_experiment_contains_all_systems(self, tiny_domain, harness_config):
        rows = matching_experiment(tiny_domain, harness_config, systems=("threshold",))
        assert [row.system for row in rows] == ["vaer", "threshold"]

    def test_vaer_distance_ablation_runs(self, tiny_domain, harness_config, tiny_representation_for_harness):
        model, _ = tiny_representation_for_harness
        row = run_vaer_matching(tiny_domain, harness_config, representation=model, distance="mahalanobis")
        assert 0.0 <= row.metrics.f1 <= 1.0


class TestStoreBinding:
    def test_mismatched_store_rejected(self, tiny_domain, harness_config, tiny_representation_for_harness, tiny_representation):
        from repro.engine import EncodingStore

        model, _ = tiny_representation_for_harness
        other_store = EncodingStore(tiny_representation, tiny_domain.task)
        with pytest.raises(ValueError, match="different representation"):
            vaer_neighbour_map(tiny_domain, model, harness_config, store=other_store)

    def test_store_only_invocation_adopts_its_model(self, tiny_domain, harness_config, tiny_representation_for_harness):
        from repro.engine import EncodingStore

        model, _ = tiny_representation_for_harness
        store = EncodingStore(model, tiny_domain.task)
        row = run_vaer_matching(tiny_domain, harness_config, store=store)
        assert 0.0 <= row.metrics.f1 <= 1.0
        assert row.representation_seconds == 0.0  # no fresh model was fit


class TestTransferExperiment:
    def test_rows_and_deltas(self, tiny_domain, restaurants_domain, harness_config):
        rows = transfer_experiment(tiny_domain, [restaurants_domain], harness_config)
        assert len(rows) == 1
        row = rows[0]
        assert row.domain == "restaurants"
        assert -1.0 <= row.recall_delta <= 1.0
        assert -1.0 <= row.f1_delta <= 1.0


class TestActiveLearningExperiment:
    def test_row_fields(self, tiny_domain, harness_config, tiny_representation_for_harness):
        model, _ = tiny_representation_for_harness
        row = active_learning_experiment(
            tiny_domain, harness_config, label_budget=20, iterations=2, representation=model,
        )
        assert row.labels_used <= 20
        assert row.full_training_size == len(tiny_domain.splits.train)
        assert len(row.f1_trace) >= 1
        assert 0.0 <= row.f1_percentage <= 2.0


class TestReporting:
    def test_representation_table(self):
        results = {"demo": {"lsa": {"raw": PRF(0.1, 0.9, 0.2), "vaer": PRF(0.2, 1.0, 0.3)}}}
        text = reporting.format_representation_table(results)
        assert "demo" in text and "0.90/1.00" in text

    def test_matching_and_timing_tables(self):
        rows = {"demo": [MatchingRow("vaer", PRF(1.0, 0.5, 2 / 3), 1.2, 0.3)]}
        assert "vaer" in reporting.format_matching_table(rows)
        timing = reporting.format_timing_table(rows)
        assert "1.20" in timing and "1.50" in timing

    def test_transfer_table(self):
        rows = [TransferRow("beer", 0.8, 0.78, 0.7, 0.69)]
        text = reporting.format_transfer_table(rows)
        assert "beer" in text and "-0.02" in text

    def test_active_learning_table(self):
        rows = [ActiveLearningRow("demo", PRF(0, 0, 0.5), PRF(0, 0, 0.8), PRF(0, 0, 1.0), 25, 100)]
        text = reporting.format_active_learning_table(rows)
        assert "80%" in text and "25%" in text

    def test_recall_curve_table(self):
        text = reporting.format_recall_curve({"demo": {10: 0.8, 20: 0.9}})
        assert "R@10" in text and "0.90" in text

    def test_f1_trace_table(self):
        text = reporting.format_f1_trace({"demo": [(10, 0.5), (20, 0.75)]})
        assert "20:0.75" in text

    def test_engine_stats_table(self):
        from repro.eval.timing import EngineCounters

        counters = EngineCounters(cache_hits=9, cache_misses=1, encodes_avoided=720, pairs_scored=4096)
        text = reporting.format_engine_stats(counters)
        assert "Encodes avoided" in text and "720" in text and "90%" in text

    def test_engine_stats_defaults_to_global_counters(self):
        text = reporting.format_engine_stats()
        assert "Cache hits" in text and "Pairs scored" in text

    def test_engine_stats_includes_persistence_columns(self):
        from repro.eval.timing import EngineCounters

        counters = EngineCounters(tables_encoded=2, disk_hits=4, disk_misses=2)
        text = reporting.format_engine_stats(counters)
        assert "Tables encoded" in text and "Disk hits" in text and "Disk misses" in text
        assert "4" in text

    def test_shard_timings_table(self):
        from repro.eval.timing import ShardTimings

        timings = ShardTimings()
        timings.record(0, 128, 0.5)
        timings.record(1, 64, 0.25)
        text = reporting.format_shard_timings(timings)
        assert "Shard" in text and "Pairs/s" in text
        assert "total" in text and "192" in text

    def test_resolution_experiment_runs_sharded(self, tiny_domain, harness_config):
        from repro.eval.harness import resolution_experiment

        row = resolution_experiment(
            tiny_domain, harness_config, k=3, batch_size=16, workers=2
        )
        assert row.workers == 2
        assert row.candidate_pairs > 0
        assert row.batches == len(row.shard_timings)
        assert row.shard_timings.total_pairs() == row.candidate_pairs
        assert row.counters["pairs_scored"] == row.candidate_pairs
        assert row.counters["tables_encoded"] == 2  # no cache dir: cold encode
        assert len(row.match_keys) == row.predicted_matches
