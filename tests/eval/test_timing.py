"""Timer utilities used by the Table VI benchmark."""

import time

from repro.eval.timing import Timer, timed


class TestTimer:
    def test_measures_elapsed(self):
        timer = Timer()
        with timer.measure("work"):
            time.sleep(0.01)
        assert timer.seconds("work") >= 0.01

    def test_accumulates_same_name(self):
        timer = Timer()
        for _ in range(2):
            with timer.measure("step"):
                time.sleep(0.005)
        assert timer.seconds("step") >= 0.01

    def test_total_sums_all(self):
        timer = Timer()
        with timer.measure("a"):
            pass
        with timer.measure("b"):
            pass
        assert timer.total() == timer.seconds("a") + timer.seconds("b")

    def test_unknown_name_is_zero(self):
        assert Timer().seconds("nothing") == 0.0

    def test_as_dict(self):
        timer = Timer()
        with timer.measure("x"):
            pass
        assert "x" in timer.as_dict()


class TestTimed:
    def test_records_duration(self):
        with timed() as result:
            time.sleep(0.01)
        assert result[0] >= 0.01
