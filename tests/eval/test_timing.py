"""Timer utilities used by the Table VI benchmark."""

import time

from repro.eval.timing import ShardTimings, Timer, timed


class TestTimer:
    def test_measures_elapsed(self):
        timer = Timer()
        with timer.measure("work"):
            time.sleep(0.01)
        assert timer.seconds("work") >= 0.01

    def test_accumulates_same_name(self):
        timer = Timer()
        for _ in range(2):
            with timer.measure("step"):
                time.sleep(0.005)
        assert timer.seconds("step") >= 0.01

    def test_total_sums_all(self):
        timer = Timer()
        with timer.measure("a"):
            pass
        with timer.measure("b"):
            pass
        assert timer.total() == timer.seconds("a") + timer.seconds("b")

    def test_unknown_name_is_zero(self):
        assert Timer().seconds("nothing") == 0.0

    def test_as_dict(self):
        timer = Timer()
        with timer.measure("x"):
            pass
        assert "x" in timer.as_dict()


class TestTimed:
    def test_records_duration(self):
        with timed() as result:
            time.sleep(0.01)
        assert result[0] >= 0.01


class TestShardTimings:
    def test_iterates_in_shard_order(self):
        timings = ShardTimings()
        timings.record(2, 10, 0.2)
        timings.record(0, 30, 0.1)
        timings.record(1, 20, 0.4)
        assert [t.shard_index for t in timings] == [0, 1, 2]
        assert timings.as_rows() == [(0, 30, 0.1), (1, 20, 0.4), (2, 10, 0.2)]

    def test_aggregates(self):
        timings = ShardTimings()
        timings.record(0, 100, 0.5)
        timings.record(1, 50, 1.5)
        assert len(timings) == 2
        assert timings.total_pairs() == 150
        assert abs(timings.total_seconds() - 2.0) < 1e-12
        assert timings.max_seconds() == 1.5

    def test_empty(self):
        timings = ShardTimings()
        assert len(timings) == 0
        assert timings.total_pairs() == 0
        assert timings.total_seconds() == 0.0
        assert timings.max_seconds() == 0.0

    def test_pairs_per_second(self):
        timings = ShardTimings()
        timings.record(0, 100, 0.5)
        (record,) = list(timings)
        assert record.pairs_per_second == 200.0
