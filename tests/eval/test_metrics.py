"""Precision/recall/F1, threshold tuning and recall@K protocols."""

import numpy as np
import pytest

from repro.data.pairs import LabeledPair
from repro.eval.metrics import (
    PRF,
    best_threshold,
    neighbour_prf_at_k,
    precision_recall_f1,
    recall_at_k,
)


class TestPrecisionRecallF1:
    def test_perfect_prediction(self):
        metrics = precision_recall_f1([1, 0, 1, 0], [1, 0, 1, 0])
        assert metrics == PRF(1.0, 1.0, 1.0)

    def test_all_wrong(self):
        metrics = precision_recall_f1([1, 1], [0, 0])
        assert metrics.recall == 0.0 and metrics.f1 == 0.0

    def test_false_positive_lowers_precision(self):
        metrics = precision_recall_f1([1, 0, 0, 0], [1, 1, 0, 0])
        assert metrics.precision == pytest.approx(0.5)
        assert metrics.recall == 1.0

    def test_false_negative_lowers_recall(self):
        metrics = precision_recall_f1([1, 1, 0], [1, 0, 0])
        assert metrics.recall == pytest.approx(0.5)
        assert metrics.precision == 1.0

    def test_f1_is_harmonic_mean(self):
        metrics = precision_recall_f1([1, 1, 0, 0], [1, 0, 1, 0])
        expected = 2 * 0.5 * 0.5 / (0.5 + 0.5)
        assert metrics.f1 == pytest.approx(expected)

    def test_no_predicted_positives(self):
        metrics = precision_recall_f1([0, 0, 1], [0, 0, 0])
        assert metrics.precision == 0.0 and metrics.f1 == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_f1([1, 0], [1])

    def test_paper_definitions(self):
        """tp/fp/fn defined exactly as in Section VI-A2."""
        truth = [1, 1, 1, 0, 0, 0, 0, 0]
        predicted = [1, 1, 0, 1, 0, 0, 0, 0]
        metrics = precision_recall_f1(truth, predicted)
        assert metrics.precision == pytest.approx(2 / 3)
        assert metrics.recall == pytest.approx(2 / 3)

    def test_as_dict_and_str(self):
        metrics = PRF(0.5, 0.25, 1 / 3)
        assert metrics.as_dict()["recall"] == 0.25
        assert "P=0.50" in str(metrics)


class TestBestThreshold:
    def test_finds_separating_threshold(self):
        truth = [0, 0, 0, 1, 1, 1]
        scores = [0.1, 0.2, 0.3, 0.7, 0.8, 0.9]
        threshold = best_threshold(truth, scores)
        predictions = (np.array(scores) > threshold).astype(int)
        assert precision_recall_f1(truth, predictions).f1 == 1.0

    def test_custom_grid(self):
        threshold = best_threshold([0, 1], [0.4, 0.6], grid=[0.5])
        assert threshold == 0.5


class TestNeighbourMetrics:
    def test_recall_at_k_full(self):
        neighbour_map = {"l0": ["r0", "r5"], "l1": ["r9", "r1"]}
        duplicates = {"l0": "r0", "l1": "r1"}
        assert recall_at_k(neighbour_map, duplicates, k=2) == 1.0

    def test_recall_at_k_respects_cutoff(self):
        neighbour_map = {"l0": ["r5", "r0"]}
        duplicates = {"l0": "r0"}
        assert recall_at_k(neighbour_map, duplicates, k=1) == 0.0
        assert recall_at_k(neighbour_map, duplicates, k=2) == 1.0

    def test_recall_at_k_missing_query(self):
        assert recall_at_k({}, {"l0": "r0"}, k=5) == 0.0

    def test_recall_at_k_empty_duplicates(self):
        assert recall_at_k({"l0": ["r0"]}, {}, k=5) == 0.0

    def test_neighbour_prf_counts(self):
        neighbour_map = {"l0": ["r0", "r1"], "l1": ["r7", "r8"]}
        positives = [LabeledPair("l0", "r0", 1), LabeledPair("l1", "r1", 1)]
        metrics = neighbour_prf_at_k(neighbour_map, positives, k=2)
        assert metrics.recall == pytest.approx(0.5)
        assert metrics.precision == pytest.approx(1 / 4)

    def test_neighbour_prf_no_positives(self):
        assert neighbour_prf_at_k({}, [], k=5) == PRF(0.0, 0.0, 0.0)

    def test_neighbour_prf_ignores_negative_pairs(self):
        neighbour_map = {"l0": ["r0"]}
        pairs = [LabeledPair("l0", "r0", 1), LabeledPair("l0", "r9", 0)]
        metrics = neighbour_prf_at_k(neighbour_map, pairs, k=1)
        assert metrics.recall == 1.0
