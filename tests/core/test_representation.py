"""EntityRepresentationModel: fitting, encoding, persistence, similarity."""

import numpy as np
import pytest

from repro.config import VAEConfig
from repro.core.representation import EntityEncoding, EntityRepresentationModel
from repro.exceptions import NotFittedError


class TestEntityEncoding:
    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            EntityEncoding(keys=("a",), mu=rng.normal(size=(1, 2, 3)), sigma=rng.normal(size=(1, 2, 4)))
        with pytest.raises(ValueError):
            EntityEncoding(keys=("a", "b"), mu=rng.normal(size=(1, 2, 3)), sigma=rng.normal(size=(1, 2, 3)))

    def test_lookup_by_key(self, rng):
        encoding = EntityEncoding(keys=("a", "b"), mu=rng.normal(size=(2, 3, 4)), sigma=np.abs(rng.normal(size=(2, 3, 4))))
        mu, sigma = encoding.of("b")
        assert mu.shape == (3, 4)
        with pytest.raises(KeyError):
            encoding.of("missing")

    def test_flat_mu(self, rng):
        encoding = EntityEncoding(keys=("a",), mu=rng.normal(size=(1, 3, 4)), sigma=np.abs(rng.normal(size=(1, 3, 4))))
        assert encoding.flat_mu().shape == (1, 12)

    def test_properties(self, rng):
        encoding = EntityEncoding(keys=("a", "b"), mu=rng.normal(size=(2, 3, 4)), sigma=np.abs(rng.normal(size=(2, 3, 4))))
        assert len(encoding) == 2 and encoding.arity == 3 and encoding.latent_dim == 4


class TestEntityRepresentationModel:
    def test_unfitted_raises(self, tiny_domain, small_vae_config):
        model = EntityRepresentationModel(small_vae_config)
        with pytest.raises(NotFittedError):
            model.encode_table(tiny_domain.task.left)

    def test_fit_trains_vae(self, tiny_representation):
        assert tiny_representation.training_history is not None
        assert tiny_representation.training_history.improved()

    def test_encode_table_shapes(self, tiny_domain, tiny_representation, small_vae_config):
        encoding = tiny_representation.encode_table(tiny_domain.task.left)
        assert encoding.mu.shape == (
            len(tiny_domain.task.left), tiny_domain.task.arity, small_vae_config.latent_dim,
        )
        assert np.all(encoding.sigma > 0)

    def test_encode_task_returns_both_sides(self, tiny_domain, tiny_representation):
        encodings = tiny_representation.encode_task(tiny_domain.task)
        assert set(encodings) == {"left", "right"}

    def test_encode_record(self, tiny_domain, tiny_representation, small_vae_config):
        record = tiny_domain.task.left.records()[0]
        mu, sigma = tiny_representation.encode_record(record)
        assert mu.shape == (tiny_domain.task.arity, small_vae_config.latent_dim)

    def test_duplicates_closer_than_non_duplicates(self, tiny_domain, tiny_representation):
        """The headline property: VAE encodings are similarity-preserving."""
        left = tiny_representation.encode_table(tiny_domain.task.left)
        right = tiny_representation.encode_table(tiny_domain.task.right)
        rng = np.random.default_rng(0)
        dup, rand = [], []
        for left_id, right_id in tiny_domain.duplicate_map.items():
            mu_l, _ = left.of(left_id)
            mu_r, _ = right.of(right_id)
            dup.append(np.linalg.norm(mu_l - mu_r))
            other = right.keys[rng.integers(0, len(right.keys))]
            mu_o, _ = right.of(other)
            rand.append(np.linalg.norm(mu_l - mu_o))
        assert np.mean(dup) < np.mean(rand)

    def test_sample_record_latents_shape(self, tiny_domain, tiny_representation, small_vae_config):
        record = tiny_domain.task.left.records()[0]
        samples = tiny_representation.sample_record_latents(record, 20, rng=np.random.default_rng(1))
        assert samples.shape == (tiny_domain.task.arity, 20, small_vae_config.latent_dim)

    def test_refit_ir_only_keeps_vae_weights(self, tiny_domain, tiny_representation):
        before = {k: v.copy() for k, v in tiny_representation.vae.state_dict().items()}
        tiny_representation.refit_ir_only(tiny_domain.task)
        after = tiny_representation.vae.state_dict()
        for key in before:
            assert np.allclose(before[key], after[key])

    def test_save_load_roundtrip(self, tmp_path, tiny_domain, tiny_representation):
        path = tmp_path / "representation.npz"
        tiny_representation.save(path)
        loaded = EntityRepresentationModel.load(path)
        loaded.refit_ir_only(tiny_domain.task)
        assert loaded.config.latent_dim == tiny_representation.config.latent_dim
        assert loaded.ir_method == tiny_representation.ir_method
        # Same VAE weights -> same encodings of the same IRs.
        irs = tiny_representation.ir_generator.transform_table(tiny_domain.task.left)
        mu_a, _ = tiny_representation.vae.encode_numpy(irs.reshape(-1, irs.shape[-1]))
        mu_b, _ = loaded.vae.encode_numpy(irs.reshape(-1, irs.shape[-1]))
        assert np.allclose(mu_a, mu_b)

    def test_seed_override(self, tiny_domain):
        config = VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2)
        model = EntityRepresentationModel(config, seed=42)
        assert model.config.seed == 42
