"""Algorithm 1 (bootstrap) and Algorithm 2 sampling components."""

import numpy as np
import pytest

from repro.config import ActiveLearningConfig
from repro.core.active import (
    EntropySampler,
    GaussianKDE,
    LatentSpaceSampler,
    RandomSampler,
    bootstrap_training_data,
    duplicate_distance_samples,
    entropy_of,
    pair_latent_distances,
)
from repro.data.pairs import PairSet, RecordPair


@pytest.fixture(scope="module")
def bootstrap_result(tiny_domain, tiny_representation, small_al_config):
    return bootstrap_training_data(
        tiny_domain.task, tiny_representation, config=small_al_config, verify_positives=False
    )


class TestBootstrap:
    def test_returns_both_classes(self, bootstrap_result, small_al_config):
        assert 0 < len(bootstrap_result.positives) <= small_al_config.bootstrap_positives
        assert 0 < len(bootstrap_result.negatives) <= small_al_config.bootstrap_negatives

    def test_unlabeled_pool_disjoint_from_labeled(self, bootstrap_result):
        labeled_keys = {p.key() for p in bootstrap_result.labeled()}
        assert not any(pair.key() in labeled_keys for pair in bootstrap_result.unlabeled)

    def test_positives_have_smaller_distances_than_negatives(self, bootstrap_result):
        pos_distances = [bootstrap_result.distances[p.key()] for p in bootstrap_result.positives]
        neg_distances = [bootstrap_result.distances[p.key()] for p in bootstrap_result.negatives]
        assert max(pos_distances) <= min(neg_distances)

    def test_automatic_positives_are_mostly_true_duplicates(self, tiny_domain, bootstrap_result):
        """The paper's premise: W2-closest pairs are (almost all) duplicates."""
        correct = sum(
            tiny_domain.task.true_match(p.left_id, p.right_id) for p in bootstrap_result.positives
        )
        assert correct / len(bootstrap_result.positives) >= 0.6

    def test_verify_positives_removes_false_ones(self, tiny_domain, tiny_representation, small_al_config):
        verified = bootstrap_training_data(
            tiny_domain.task, tiny_representation, config=small_al_config, verify_positives=True
        )
        for pair in verified.positives:
            assert tiny_domain.task.true_match(pair.left_id, pair.right_id)

    def test_summary_mentions_counts(self, bootstrap_result):
        assert "positives" in bootstrap_result.summary()


class TestEntropy:
    def test_maximal_at_half(self):
        assert entropy_of(np.array([0.5]))[0] == pytest.approx(np.log(2))

    def test_near_zero_at_extremes(self):
        values = entropy_of(np.array([0.001, 0.999]))
        assert np.all(values < 0.01)

    def test_symmetric(self):
        assert entropy_of(np.array([0.3]))[0] == pytest.approx(entropy_of(np.array([0.7]))[0])


class TestDiversityEstimation:
    def test_duplicate_distance_samples_shape(self, tiny_domain, tiny_representation):
        positives = PairSet(tiny_domain.splits.train.positives().pairs()[:3])
        samples = duplicate_distance_samples(
            tiny_domain.task, tiny_representation, positives, samples_per_pair=15,
            rng=np.random.default_rng(0),
        )
        assert samples.shape == (45,)
        assert np.all(samples >= 0)

    def test_empty_positive_set_gives_empty_samples(self, tiny_domain, tiny_representation):
        samples = duplicate_distance_samples(tiny_domain.task, tiny_representation, PairSet())
        assert samples.size == 0

    def test_pair_latent_distances(self, tiny_domain, tiny_representation):
        pairs = [RecordPair(p.left_id, p.right_id) for p in tiny_domain.splits.test.pairs()[:5]]
        distances = pair_latent_distances(tiny_domain.task, tiny_representation, pairs)
        assert distances.shape == (5,) and np.all(distances >= 0)

    def test_duplicate_distances_smaller_than_negative_distances(self, tiny_domain, tiny_representation):
        positives = [RecordPair(p.left_id, p.right_id) for p in tiny_domain.splits.train.positives()]
        negatives = [RecordPair(p.left_id, p.right_id) for p in tiny_domain.splits.train.negatives()]
        d_pos = pair_latent_distances(tiny_domain.task, tiny_representation, positives)
        d_neg = pair_latent_distances(tiny_domain.task, tiny_representation, negatives)
        assert d_pos.mean() < d_neg.mean()


class TestLatentSpaceSampler:
    @pytest.fixture(scope="class")
    def scored_pool(self, rng):
        pairs = [RecordPair(f"l{i}", f"r{i}") for i in range(40)]
        probabilities = rng.random(40)
        distances = rng.random(40) * 2
        return pairs, probabilities, distances

    def test_selection_respects_per_category_budget(self, scored_pool, small_al_config, rng):
        pairs, probabilities, distances = scored_pool
        sampler = LatentSpaceSampler(small_al_config)
        kde = GaussianKDE().fit(rng.random(50) * 0.5)
        selection = sampler.select(pairs, probabilities, distances, kde, per_category=3)
        assert len(selection.certain_positives) <= 3
        assert len(selection.uncertain_negatives) <= 3

    def test_no_pair_selected_twice(self, scored_pool, small_al_config, rng):
        pairs, probabilities, distances = scored_pool
        sampler = LatentSpaceSampler(small_al_config)
        kde = GaussianKDE().fit(rng.random(50) * 0.5)
        selection = sampler.select(pairs, probabilities, distances, kde, per_category=5)
        keys = [p.key() for p in selection.all_pairs()]
        assert len(keys) == len(set(keys))

    def test_class_balance_property(self, scored_pool, small_al_config, rng):
        """Positive categories only contain predicted positives, and vice versa."""
        pairs, probabilities, distances = scored_pool
        sampler = LatentSpaceSampler(small_al_config)
        kde = GaussianKDE().fit(rng.random(50))
        selection = sampler.select(pairs, probabilities, distances, kde, per_category=4)
        probability_of = {p.key(): probabilities[i] for i, p in enumerate(pairs)}
        assert all(probability_of[p.key()] > 0.5 for p in selection.certain_positives)
        assert all(probability_of[p.key()] <= 0.5 for p in selection.certain_negatives)

    def test_certain_positives_have_low_entropy(self, scored_pool, small_al_config, rng):
        pairs, probabilities, distances = scored_pool
        sampler = LatentSpaceSampler(small_al_config)
        kde = GaussianKDE().fit(rng.random(100))
        selection = sampler.select(pairs, probabilities, distances, kde, per_category=3)
        entropy = entropy_of(probabilities)
        entropy_of_pair = {p.key(): entropy[i] for i, p in enumerate(pairs)}
        positive_entropies = [entropy_of_pair[p.key()] for p in selection.certain_positives]
        uncertain_entropies = [entropy_of_pair[p.key()] for p in selection.uncertain_positives]
        if positive_entropies and uncertain_entropies:
            assert np.mean(positive_entropies) <= np.mean(uncertain_entropies) + 1e-9

    def test_empty_pool(self, small_al_config, rng):
        sampler = LatentSpaceSampler(small_al_config)
        kde = GaussianKDE().fit(rng.random(10))
        selection = sampler.select([], np.zeros(0), np.zeros(0), kde)
        assert len(selection) == 0

    def test_misaligned_inputs_rejected(self, small_al_config, rng):
        sampler = LatentSpaceSampler(small_al_config)
        kde = GaussianKDE().fit(rng.random(10))
        with pytest.raises(ValueError):
            sampler.select([RecordPair("a", "b")], np.zeros(2), np.zeros(1), kde)

    def test_fit_positive_kde_on_tiny_seed(self, tiny_domain, tiny_representation, small_al_config):
        sampler = LatentSpaceSampler(small_al_config)
        positives = PairSet(tiny_domain.splits.train.positives().pairs()[:2])
        kde = sampler.fit_positive_kde(tiny_domain.task, tiny_representation, positives)
        assert np.isfinite(kde.likelihood(0.1))


class TestBaselineSamplers:
    def test_random_sampler_size(self, small_al_config):
        pairs = [RecordPair(f"l{i}", f"r{i}") for i in range(30)]
        selected = RandomSampler(small_al_config, seed=1).select(pairs)
        assert len(selected) == small_al_config.samples_per_iteration

    def test_random_sampler_handles_small_pool(self, small_al_config):
        pairs = [RecordPair("a", "b")]
        assert len(RandomSampler(small_al_config).select(pairs)) == 1

    def test_entropy_sampler_picks_most_uncertain(self, small_al_config):
        pairs = [RecordPair(f"l{i}", f"r{i}") for i in range(5)]
        probabilities = np.array([0.01, 0.5, 0.95, 0.45, 0.99])
        selected = EntropySampler(small_al_config).select(pairs, probabilities, batch_size=2)
        assert {p.key() for p in selected} == {("l1", "r1"), ("l3", "r3")}

    def test_entropy_sampler_empty_pool(self, small_al_config):
        assert EntropySampler(small_al_config).select([], np.zeros(0)) == []
