"""The active-learning loop end to end (Algorithm 2 outer structure)."""

import numpy as np
import pytest

from repro.config import MatcherConfig
from repro.core.active import ActiveLearningLoop, GroundTruthOracle
from repro.exceptions import ActiveLearningError


@pytest.fixture(scope="module")
def loop_matcher_config():
    return MatcherConfig(epochs=12, mlp_hidden=(24, 12), seed=17)


@pytest.fixture(scope="module")
def al_result(tiny_domain, tiny_representation, small_al_config, loop_matcher_config):
    oracle = GroundTruthOracle(tiny_domain.task)
    loop = ActiveLearningLoop(
        task=tiny_domain.task,
        representation=tiny_representation,
        oracle=oracle,
        config=small_al_config,
        matcher_config=loop_matcher_config,
        test_pairs=tiny_domain.splits.test,
    )
    result = loop.run(iterations=3)
    return result, oracle


class TestActiveLearningLoop:
    def test_unknown_strategy_rejected(self, tiny_domain, tiny_representation, small_al_config):
        with pytest.raises(ActiveLearningError):
            ActiveLearningLoop(
                tiny_domain.task, tiny_representation, GroundTruthOracle(tiny_domain.task),
                config=small_al_config, strategy="banana",
            )

    def test_history_grows_with_iterations(self, al_result):
        result, _ = al_result
        assert len(result.history) >= 2
        assert result.history[0].iteration == 0

    def test_labeled_pool_grows(self, al_result):
        result, _ = al_result
        first, last = result.history[0], result.history[-1]
        total_first = first.labeled_positives + first.labeled_negatives
        total_last = last.labeled_positives + last.labeled_negatives
        assert total_last > total_first

    def test_oracle_labels_counted(self, al_result, small_al_config):
        result, oracle = al_result
        assert oracle.labels_provided > 0
        assert result.labels_used == oracle.labels_provided

    def test_labels_match_ground_truth(self, al_result, tiny_domain):
        result, _ = al_result
        for pair in result.positives:
            # Bootstrap positives are verified; oracle-labeled ones are true by construction.
            assert tiny_domain.task.true_match(pair.left_id, pair.right_id)
        for pair in result.negatives:
            assert not tiny_domain.task.true_match(pair.left_id, pair.right_id)

    def test_test_metrics_recorded(self, al_result):
        result, _ = al_result
        assert all(record.test_metrics is not None for record in result.history)
        assert all(0.0 <= record.test_metrics.f1 <= 1.0 for record in result.history)

    def test_f1_trace_shape(self, al_result):
        result, _ = al_result
        trace = result.f1_trace()
        assert len(trace) == len(result.history)
        labels = [labels_used for labels_used, _ in trace]
        assert labels == sorted(labels)

    def test_final_matcher_is_usable(self, al_result, tiny_domain, tiny_representation):
        from repro.core.matcher import pair_ir_arrays

        result, _ = al_result
        left, right, _ = pair_ir_arrays(tiny_representation, tiny_domain.task, tiny_domain.splits.test)
        probabilities = result.matcher.predict_proba(left, right)
        assert probabilities.shape == (len(tiny_domain.splits.test),)

    def test_label_budget_respected(self, tiny_domain, tiny_representation, small_al_config, loop_matcher_config):
        oracle = GroundTruthOracle(tiny_domain.task)
        loop = ActiveLearningLoop(
            tiny_domain.task, tiny_representation, oracle,
            config=small_al_config, matcher_config=loop_matcher_config,
        )
        loop.run(iterations=10, label_budget=10)
        assert oracle.labels_provided <= 10

    def test_random_strategy_runs(self, tiny_domain, tiny_representation, small_al_config, loop_matcher_config):
        oracle = GroundTruthOracle(tiny_domain.task)
        loop = ActiveLearningLoop(
            tiny_domain.task, tiny_representation, oracle,
            config=small_al_config, matcher_config=loop_matcher_config, strategy="random",
        )
        result = loop.run(iterations=1)
        assert oracle.labels_provided > 0 and result.matcher is not None

    def test_entropy_strategy_runs(self, tiny_domain, tiny_representation, small_al_config, loop_matcher_config):
        oracle = GroundTruthOracle(tiny_domain.task)
        loop = ActiveLearningLoop(
            tiny_domain.task, tiny_representation, oracle,
            config=small_al_config, matcher_config=loop_matcher_config, strategy="entropy",
        )
        result = loop.run(iterations=1)
        assert oracle.labels_provided > 0 and len(result.history) == 2
