"""The end-to-end VAER pipeline API."""

import numpy as np
import pytest

from repro.config import (
    ActiveLearningConfig,
    MatcherConfig,
    VAEConfig,
    VAERConfig,
)
from repro.core import VAER
from repro.core.active import GroundTruthOracle
from repro.exceptions import NotFittedError


@pytest.fixture(scope="module")
def pipeline_config():
    return VAERConfig(
        vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=4, seed=3),
        matcher=MatcherConfig(epochs=20, mlp_hidden=(24, 12), seed=5),
        active_learning=ActiveLearningConfig(
            samples_per_iteration=8, top_neighbours=5, iterations=2,
            kde_samples_per_pair=20, retrain_epochs=8, seed=11,
        ),
    )


@pytest.fixture(scope="module")
def fitted_pipeline(tiny_domain, pipeline_config):
    model = VAER(pipeline_config)
    model.fit_representation(tiny_domain.task)
    model.fit_matcher(tiny_domain.splits.train, tiny_domain.splits.validation)
    return model


class TestPipelineLifecycle:
    def test_matcher_before_representation_raises(self, tiny_domain, pipeline_config):
        with pytest.raises(NotFittedError):
            VAER(pipeline_config).fit_matcher(tiny_domain.splits.train)

    def test_predict_before_matcher_raises(self, tiny_domain, pipeline_config):
        model = VAER(pipeline_config).fit_representation(tiny_domain.task)
        with pytest.raises(NotFittedError):
            model.predict_pairs(tiny_domain.splits.test)

    def test_evaluate_returns_sane_metrics(self, fitted_pipeline, tiny_domain):
        metrics = fitted_pipeline.evaluate(tiny_domain.splits.test)
        assert 0.0 <= metrics.f1 <= 1.0
        assert metrics.f1 > 0.3  # far better than an empty prediction

    def test_threshold_tuned_on_validation(self, fitted_pipeline):
        assert 0.05 <= fitted_pipeline.threshold <= 0.95

    def test_predict_pairs_shape(self, fitted_pipeline, tiny_domain):
        probabilities = fitted_pipeline.predict_pairs(tiny_domain.splits.test)
        assert probabilities.shape == (len(tiny_domain.splits.test),)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_summary_reports_state(self, fitted_pipeline, tiny_domain):
        summary = fitted_pipeline.summary()
        assert summary["task"] == tiny_domain.task.name
        assert summary["representation_fitted"] and summary["matcher_fitted"]
        assert summary["vae_parameters"] > 0


class TestBlockingAndResolve:
    def test_candidate_pairs_cover_most_duplicates(self, fitted_pipeline, tiny_domain):
        candidates = fitted_pipeline.candidate_pairs(k=10)
        keys = {(pair.left_id, pair.right_id) for pair in candidates}
        covered = sum((l, r) in keys for l, r in tiny_domain.duplicate_map.items())
        assert covered / len(tiny_domain.duplicate_map) > 0.6

    def test_resolve_returns_scored_candidates(self, fitted_pipeline):
        result = fitted_pipeline.resolve(k=5)
        assert len(result.pairs) == len(result.probabilities)
        matches = result.matches()
        assert all((p.left_id, p.right_id) in {(q.left_id, q.right_id) for q in result.pairs} for p in matches)

    def test_resolve_finds_true_matches(self, fitted_pipeline, tiny_domain):
        result = fitted_pipeline.resolve(k=10)
        matched_keys = {(p.left_id, p.right_id) for p in result.matches()}
        true_found = sum((l, r) in matched_keys for l, r in tiny_domain.duplicate_map.items())
        assert true_found > 0


class TestTransferAndActiveLearning:
    def test_use_representation_transfers(self, tiny_domain, pipeline_config, tiny_representation):
        model = VAER(pipeline_config).use_representation(tiny_representation, tiny_domain.task)
        model.fit_matcher(tiny_domain.splits.train)
        metrics = model.evaluate(tiny_domain.splits.test)
        assert metrics.f1 > 0.2

    def test_active_learning_adopts_matcher(self, tiny_domain, pipeline_config):
        model = VAER(pipeline_config).fit_representation(tiny_domain.task)
        oracle = GroundTruthOracle(tiny_domain.task)
        result = model.active_learning(oracle, iterations=2, test_pairs=tiny_domain.splits.test)
        assert model.matcher is result.matcher
        metrics = model.evaluate(tiny_domain.splits.test)
        assert 0.0 <= metrics.f1 <= 1.0
        assert oracle.labels_provided > 0
