"""VAE architecture, training objective and encoding behaviour."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.config import VAEConfig
from repro.core.vae import GaussianDecoder, GaussianEncoder, VariationalAutoEncoder


@pytest.fixture(scope="module")
def config():
    return VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=6, batch_size=32, seed=2)


@pytest.fixture(scope="module")
def clustered_irs():
    """Synthetic IRs drawn from two distinct clusters."""
    rng = np.random.default_rng(8)
    a = rng.normal(loc=2.0, scale=0.3, size=(80, 12))
    b = rng.normal(loc=-2.0, scale=0.3, size=(80, 12))
    return np.vstack([a, b])


class TestEncoderDecoder:
    def test_encoder_output_shapes(self, config, rng):
        encoder = GaussianEncoder(config.ir_dim, config.hidden_dim, config.latent_dim, rng=rng)
        mu, log_var = encoder(Tensor(rng.normal(size=(5, config.ir_dim))))
        assert mu.shape == (5, config.latent_dim) and log_var.shape == (5, config.latent_dim)

    def test_log_var_clipped(self, config, rng):
        encoder = GaussianEncoder(config.ir_dim, config.hidden_dim, config.latent_dim, rng=rng)
        _, log_var = encoder(Tensor(rng.normal(size=(5, config.ir_dim)) * 1000))
        assert np.all(log_var.data >= -8.0) and np.all(log_var.data <= 8.0)

    def test_decoder_output_shape(self, config, rng):
        decoder = GaussianDecoder(config.latent_dim, config.hidden_dim, config.ir_dim, rng=rng)
        out = decoder(Tensor(rng.normal(size=(4, config.latent_dim))))
        assert out.shape == (4, config.ir_dim)


class TestVAE:
    def test_forward_shapes(self, config, rng):
        vae = VariationalAutoEncoder(config)
        x = rng.normal(size=(7, config.ir_dim))
        reconstruction, mu, log_var = vae(Tensor(x))
        assert reconstruction.shape == (7, config.ir_dim)
        assert mu.shape == (7, config.latent_dim)

    def test_eval_mode_is_deterministic(self, config, rng):
        vae = VariationalAutoEncoder(config)
        vae.eval()
        x = rng.normal(size=(3, config.ir_dim))
        a, _, _ = vae(Tensor(x))
        b, _, _ = vae(Tensor(x))
        assert np.allclose(a.data, b.data)

    def test_train_mode_is_stochastic(self, config, rng):
        vae = VariationalAutoEncoder(config)
        vae.train()
        x = rng.normal(size=(3, config.ir_dim))
        a, _, _ = vae(Tensor(x))
        b, _, _ = vae(Tensor(x))
        assert not np.allclose(a.data, b.data)

    def test_loss_is_finite_scalar(self, config, rng):
        vae = VariationalAutoEncoder(config)
        loss = vae.loss(Tensor(rng.normal(size=(5, config.ir_dim))))
        assert loss.size == 1 and np.isfinite(loss.data)

    def test_training_reduces_loss(self, config, clustered_irs):
        vae = VariationalAutoEncoder(config)
        history = vae.fit(clustered_irs)
        assert history.improved()
        assert history.final_loss < 0.7 * history.initial_loss

    def test_fit_rejects_wrong_dim(self, config):
        vae = VariationalAutoEncoder(config)
        with pytest.raises(ValueError):
            vae.fit(np.zeros((10, config.ir_dim + 1)))

    def test_encode_numpy_shapes(self, config, clustered_irs):
        vae = VariationalAutoEncoder(config)
        mu, sigma = vae.encode_numpy(clustered_irs[:5])
        assert mu.shape == (5, config.latent_dim)
        assert np.all(sigma > 0)

    def test_encode_numpy_single_row(self, config, clustered_irs):
        vae = VariationalAutoEncoder(config)
        mu, sigma = vae.encode_numpy(clustered_irs[0])
        assert mu.shape == (config.latent_dim,)

    def test_latent_space_separates_clusters(self, config, clustered_irs):
        """After training, the two IR clusters should map to distinct latents."""
        vae = VariationalAutoEncoder(config)
        vae.fit(clustered_irs)
        mu, _ = vae.encode_numpy(clustered_irs)
        first, second = mu[:80], mu[80:]
        within = np.linalg.norm(first - first.mean(axis=0), axis=1).mean()
        between = np.linalg.norm(first.mean(axis=0) - second.mean(axis=0))
        assert between > within

    def test_sample_latent_shape_and_spread(self, config, clustered_irs):
        vae = VariationalAutoEncoder(config)
        samples = vae.sample_latent(clustered_irs[:3], num_samples=50, rng=np.random.default_rng(0))
        assert samples.shape == (3, 50, config.latent_dim)
        assert samples.std(axis=1).mean() > 0  # reparameterised samples vary

    def test_kl_weight_zero_behaves_like_autoencoder(self, clustered_irs):
        """With kl_weight=0 the loss reduces to reconstruction only (ablation)."""
        cfg = VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=4, kl_weight=0.0, seed=2)
        vae = VariationalAutoEncoder(cfg)
        history = vae.fit(clustered_irs)
        assert history.improved()

    def test_state_dict_roundtrip(self, config, rng):
        a = VariationalAutoEncoder(config)
        b = VariationalAutoEncoder(config)
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(4, config.ir_dim))
        mu_a, _ = a.encode_numpy(x)
        mu_b, _ = b.encode_numpy(x)
        assert np.allclose(mu_a, mu_b)
