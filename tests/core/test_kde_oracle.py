"""Gaussian KDE and labeling oracles."""

import numpy as np
import pytest

from repro.core.active import BudgetedOracle, GaussianKDE, GroundTruthOracle, NoisyOracle
from repro.data.pairs import RecordPair
from repro.exceptions import NotFittedError


class TestGaussianKDE:
    def test_evaluate_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GaussianKDE().evaluate([0.0])

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE().fit([])

    def test_density_peaks_at_data(self, rng):
        samples = rng.normal(loc=5.0, scale=0.5, size=500)
        kde = GaussianKDE().fit(samples)
        assert kde.likelihood(5.0) > kde.likelihood(10.0)

    def test_density_integrates_to_one(self, rng):
        samples = rng.normal(size=300)
        kde = GaussianKDE().fit(samples)
        grid = np.linspace(-6, 6, 2000)
        integral = np.trapezoid(kde.evaluate(grid), grid)
        assert integral == pytest.approx(1.0, abs=0.02)

    def test_matches_scipy_reference(self, rng):
        from scipy.stats import gaussian_kde as scipy_kde
        samples = rng.normal(size=200)
        ours = GaussianKDE().fit(samples)
        theirs = scipy_kde(samples)
        grid = np.linspace(-3, 3, 25)
        # Bandwidth rules differ (Silverman variants), so compare shapes loosely.
        correlation = np.corrcoef(ours.evaluate(grid), theirs(grid))[0, 1]
        assert correlation > 0.98

    def test_bimodal_distribution_has_two_peaks(self, rng):
        samples = np.concatenate([rng.normal(-4, 0.3, 200), rng.normal(4, 0.3, 200)])
        kde = GaussianKDE().fit(samples)
        assert kde.likelihood(-4.0) > kde.likelihood(0.0)
        assert kde.likelihood(4.0) > kde.likelihood(0.0)

    def test_constant_samples_do_not_crash(self):
        kde = GaussianKDE().fit(np.zeros(10))
        assert np.isfinite(kde.likelihood(0.0))

    def test_explicit_bandwidth_respected(self, rng):
        kde = GaussianKDE(bandwidth=0.7).fit(rng.normal(size=50))
        assert kde.fitted_bandwidth == 0.7

    def test_likelihood_floor(self, rng):
        kde = GaussianKDE().fit(rng.normal(size=50))
        assert kde.likelihood(1e9) >= 1e-9


class TestOracles:
    def test_ground_truth_oracle_counts(self, tiny_domain):
        oracle = GroundTruthOracle(tiny_domain.task)
        left_id, right_id = next(iter(tiny_domain.duplicate_map.items()))
        assert oracle.label(RecordPair(left_id, right_id)) == 1
        assert oracle.labels_provided == 1
        oracle.reset()
        assert oracle.labels_provided == 0

    def test_ground_truth_negative(self, tiny_domain):
        oracle = GroundTruthOracle(tiny_domain.task)
        negatives = tiny_domain.splits.train.negatives().pairs()
        assert oracle.label(RecordPair(negatives[0].left_id, negatives[0].right_id)) == 0

    def test_noisy_oracle_flips_sometimes(self, tiny_domain):
        oracle = NoisyOracle(tiny_domain.task, flip_probability=0.4, seed=1)
        left_id, right_id = next(iter(tiny_domain.duplicate_map.items()))
        labels = [oracle.label(RecordPair(left_id, right_id)) for _ in range(100)]
        assert 0 < sum(labels) < 100

    def test_noisy_oracle_invalid_probability(self, tiny_domain):
        with pytest.raises(ValueError):
            NoisyOracle(tiny_domain.task, flip_probability=0.7)

    def test_budgeted_oracle_enforces_budget(self, tiny_domain):
        oracle = BudgetedOracle(GroundTruthOracle(tiny_domain.task), budget=2)
        pair = RecordPair(*next(iter(tiny_domain.duplicate_map.items())))
        oracle.label(pair)
        oracle.label(pair)
        assert oracle.remaining == 0
        with pytest.raises(RuntimeError):
            oracle.label(pair)

    def test_budgeted_oracle_invalid_budget(self, tiny_domain):
        with pytest.raises(ValueError):
            BudgetedOracle(GroundTruthOracle(tiny_domain.task), budget=0)
