"""Siamese matcher: architecture, Equation 4 training, prediction."""

import numpy as np
import pytest

from repro.config import MatcherConfig
from repro.core.matcher import SiameseMatcher, pair_ir_arrays, train_matcher
from repro.exceptions import NotFittedError


@pytest.fixture(scope="module")
def trained_matcher(tiny_domain, tiny_representation, small_matcher_config):
    matcher = SiameseMatcher(
        arity=tiny_domain.task.arity,
        vae_config=tiny_representation.config,
        config=small_matcher_config,
    ).initialize_from(tiny_representation)
    left, right, labels = pair_ir_arrays(tiny_representation, tiny_domain.task, tiny_domain.splits.train)
    matcher.fit(left, right, labels)
    return matcher


class TestConstruction:
    def test_invalid_arity(self, small_vae_config):
        with pytest.raises(ValueError):
            SiameseMatcher(arity=0, vae_config=small_vae_config)

    def test_invalid_distance(self, small_vae_config):
        with pytest.raises(ValueError):
            SiameseMatcher(arity=2, vae_config=small_vae_config, distance="cosine")

    def test_initialize_from_copies_encoder_weights(self, tiny_domain, tiny_representation, small_matcher_config):
        matcher = SiameseMatcher(
            arity=tiny_domain.task.arity,
            vae_config=tiny_representation.config,
            config=small_matcher_config,
        ).initialize_from(tiny_representation)
        source = tiny_representation.vae.encoder.state_dict()
        target = matcher.encoder.state_dict()
        for key in source:
            assert np.allclose(source[key], target[key])


class TestPairIRArrays:
    def test_shapes(self, tiny_domain, tiny_representation, small_vae_config):
        left, right, labels = pair_ir_arrays(tiny_representation, tiny_domain.task, tiny_domain.splits.test)
        n = len(tiny_domain.splits.test)
        assert left.shape == (n, tiny_domain.task.arity, small_vae_config.ir_dim)
        assert right.shape == left.shape and labels.shape == (n,)

    def test_empty_pairs(self, tiny_domain, tiny_representation):
        left, right, labels = pair_ir_arrays(tiny_representation, tiny_domain.task, [])
        assert left.shape[0] == 0 and labels.shape == (0,)


class TestTrainingAndInference:
    def test_predict_before_fit_raises(self, tiny_domain, tiny_representation, small_matcher_config):
        matcher = SiameseMatcher(tiny_domain.task.arity, tiny_representation.config, small_matcher_config)
        with pytest.raises(NotFittedError):
            matcher.predict_proba(np.zeros((1, 3, 16)), np.zeros((1, 3, 16)))

    def test_fit_reduces_loss(self, trained_matcher):
        assert trained_matcher.training_history.improved()

    def test_fit_validates_shapes(self, tiny_domain, tiny_representation, small_matcher_config):
        matcher = SiameseMatcher(tiny_domain.task.arity, tiny_representation.config, small_matcher_config)
        with pytest.raises(ValueError):
            matcher.fit(np.zeros((4, 3, 16)), np.zeros((5, 3, 16)), np.zeros(4))
        with pytest.raises(ValueError):
            matcher.fit(np.zeros((4, 3, 16)), np.zeros((4, 3, 16)), np.zeros(3))

    def test_probabilities_in_unit_interval(self, trained_matcher, tiny_domain, tiny_representation):
        left, right, _ = pair_ir_arrays(tiny_representation, tiny_domain.task, tiny_domain.splits.test)
        probabilities = trained_matcher.predict_proba(left, right)
        assert np.all(probabilities >= 0) and np.all(probabilities <= 1)

    def test_predictions_beat_chance(self, trained_matcher, tiny_domain, tiny_representation):
        left, right, labels = pair_ir_arrays(tiny_representation, tiny_domain.task, tiny_domain.splits.test)
        predictions = trained_matcher.predict(left, right)
        accuracy = float((predictions == labels.astype(int)).mean())
        majority = max(labels.mean(), 1 - labels.mean())
        assert accuracy >= majority

    def test_separates_train_duplicates_from_non_duplicates(self, trained_matcher, tiny_domain, tiny_representation):
        left, right, labels = pair_ir_arrays(tiny_representation, tiny_domain.task, tiny_domain.splits.train)
        probabilities = trained_matcher.predict_proba(left, right)
        assert probabilities[labels == 1].mean() > probabilities[labels == 0].mean()

    def test_pair_distances_positive_smaller(self, trained_matcher, tiny_domain, tiny_representation):
        """The contrastive term must pull duplicates together in the latent space."""
        left, right, labels = pair_ir_arrays(tiny_representation, tiny_domain.task, tiny_domain.splits.train)
        distances = trained_matcher.pair_distances(left, right)
        assert distances[labels == 1].mean() < distances[labels == 0].mean()

    def test_mahalanobis_variant_trains(self, tiny_domain, tiny_representation):
        config = MatcherConfig(epochs=10, mlp_hidden=(16,), seed=3)
        matcher = SiameseMatcher(
            tiny_domain.task.arity, tiny_representation.config, config, distance="mahalanobis"
        ).initialize_from(tiny_representation)
        left, right, labels = pair_ir_arrays(tiny_representation, tiny_domain.task, tiny_domain.splits.train)
        history = matcher.fit(left, right, labels)
        assert np.isfinite(history.final_loss)

    def test_train_matcher_convenience(self, tiny_domain, tiny_representation, small_matcher_config):
        matcher = train_matcher(
            tiny_representation, tiny_domain.task, tiny_domain.splits.train,
            config=small_matcher_config, epochs=5,
        )
        assert matcher.training_history is not None

    def test_custom_threshold_changes_predictions(self, trained_matcher, tiny_domain, tiny_representation):
        left, right, _ = pair_ir_arrays(tiny_representation, tiny_domain.task, tiny_domain.splits.test)
        strict = trained_matcher.predict(left, right, threshold=0.99).sum()
        lenient = trained_matcher.predict(left, right, threshold=0.01).sum()
        assert lenient >= strict
