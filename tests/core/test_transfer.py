"""Transfer-learning behaviour (Section III-D / VI-D)."""

import numpy as np
import pytest

from repro.core.representation import EntityRepresentationModel
from repro.core.transfer import adapt_task_arity, transfer_representation, transfer_with_report
from repro.data.generators import load_domain
from repro.exceptions import ArityMismatchError


@pytest.fixture(scope="module")
def target_domain():
    return load_domain("beer", scale=0.4)


class TestTransferRepresentation:
    def test_transferred_model_shares_vae_weights(self, tiny_representation, target_domain):
        transferred = transfer_representation(tiny_representation, target_domain.task)
        source_state = tiny_representation.vae.state_dict()
        target_state = transferred.vae.state_dict()
        for key in source_state:
            assert np.allclose(source_state[key], target_state[key])

    def test_transferred_model_encodes_new_domain(self, tiny_representation, target_domain):
        transferred = transfer_representation(tiny_representation, target_domain.task)
        encoding = transferred.encode_table(target_domain.task.left)
        assert encoding.mu.shape[0] == len(target_domain.task.left)
        assert np.isfinite(encoding.mu).all()

    def test_transfer_is_isolated_from_source(self, tiny_representation, target_domain):
        """Mutating the transferred VAE must not affect the source model."""
        transferred = transfer_representation(tiny_representation, target_domain.task)
        for param in transferred.vae.parameters():
            param.data = param.data + 1.0
        source_state = tiny_representation.vae.state_dict()
        target_state = transferred.vae.state_dict()
        assert not np.allclose(source_state["encoder.hidden.weight"], target_state["encoder.hidden.weight"])

    def test_transferred_encodings_are_similarity_preserving(self, tiny_representation, target_domain):
        """The key Table VII property: transferred recall should not collapse."""
        transferred = transfer_representation(tiny_representation, target_domain.task)
        left = transferred.encode_table(target_domain.task.left)
        right = transferred.encode_table(target_domain.task.right)
        rng = np.random.default_rng(0)
        dup, rand = [], []
        for left_id, right_id in target_domain.duplicate_map.items():
            mu_l, _ = left.of(left_id)
            mu_r, _ = right.of(right_id)
            dup.append(np.linalg.norm(mu_l - mu_r))
            other = right.keys[rng.integers(0, len(right.keys))]
            rand.append(np.linalg.norm(mu_l - right.of(other)[0]))
        assert np.mean(dup) < np.mean(rand)


class TestArityAdaptation:
    def test_same_arity_is_noop(self, target_domain):
        assert adapt_task_arity(target_domain.task, target_domain.task.arity) is target_domain.task

    def test_truncation(self, target_domain):
        adapted = adapt_task_arity(target_domain.task, 2)
        assert adapted.arity == 2

    def test_padding(self, target_domain):
        adapted = adapt_task_arity(target_domain.task, target_domain.task.arity + 3)
        assert adapted.arity == target_domain.task.arity + 3

    def test_invalid_arity(self, target_domain):
        with pytest.raises(ArityMismatchError):
            adapt_task_arity(target_domain.task, 0)

    def test_ground_truth_survives_adaptation(self, target_domain):
        adapted = adapt_task_arity(target_domain.task, 2)
        left_id, right_id = next(iter(target_domain.duplicate_map.items()))
        assert adapted.true_match(left_id, right_id)


class TestTransferWithReport:
    def test_report_contents(self, tiny_representation, target_domain):
        _, adapted, report = transfer_with_report(
            tiny_representation, "tinytest", target_domain.task, matcher_arity=3
        )
        assert report.source_domain == "tinytest"
        assert report.target_domain == target_domain.task.name
        assert report.arity_adapted == (target_domain.task.arity != 3)
        assert adapted.arity == 3

    def test_no_adaptation_when_arity_omitted(self, tiny_representation, target_domain):
        _, adapted, report = transfer_with_report(tiny_representation, "tinytest", target_domain.task)
        assert adapted.arity == target_domain.task.arity
        assert not report.arity_adapted
