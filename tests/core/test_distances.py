"""Wasserstein / Mahalanobis distance properties (Equation 3)."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradient
from repro.core.distances import (
    euclidean,
    mahalanobis_squared,
    tuple_wasserstein,
    wasserstein2_squared,
    wasserstein2_vector,
    wasserstein2_vector_t,
    mahalanobis_vector_t,
)


class TestWasserstein:
    def test_zero_for_identical_gaussians(self, rng):
        mu, sigma = rng.normal(size=5), np.abs(rng.normal(size=5))
        assert wasserstein2_squared(mu, sigma, mu, sigma) == pytest.approx(0.0)

    def test_symmetry(self, rng):
        mu_p, mu_q = rng.normal(size=5), rng.normal(size=5)
        sigma_p, sigma_q = np.abs(rng.normal(size=5)), np.abs(rng.normal(size=5))
        assert wasserstein2_squared(mu_p, sigma_p, mu_q, sigma_q) == pytest.approx(
            wasserstein2_squared(mu_q, sigma_q, mu_p, sigma_p)
        )

    def test_nonnegative(self, rng):
        for _ in range(10):
            d = wasserstein2_squared(
                rng.normal(size=4), np.abs(rng.normal(size=4)),
                rng.normal(size=4), np.abs(rng.normal(size=4)),
            )
            assert d >= 0

    def test_matches_equation3(self):
        mu_p, sigma_p = np.array([1.0, 0.0]), np.array([1.0, 2.0])
        mu_q, sigma_q = np.array([0.0, 0.0]), np.array([2.0, 2.0])
        expected = (1 - 0) ** 2 + (1 - 2) ** 2
        assert wasserstein2_squared(mu_p, sigma_p, mu_q, sigma_q) == pytest.approx(expected)

    def test_vector_sums_to_squared(self, rng):
        mu_p, mu_q = rng.normal(size=6), rng.normal(size=6)
        sigma_p, sigma_q = np.abs(rng.normal(size=6)), np.abs(rng.normal(size=6))
        vec = wasserstein2_vector(mu_p, sigma_p, mu_q, sigma_q)
        assert vec.sum() == pytest.approx(wasserstein2_squared(mu_p, sigma_p, mu_q, sigma_q))

    def test_correlates_with_euclidean_mean_distance(self, rng):
        """The property Algorithm 1 relies on for using Euclidean LSH."""
        sigma = np.abs(rng.normal(size=8)) * 0.01
        base = rng.normal(size=8)
        w2, eu = [], []
        for scale in np.linspace(0.1, 5.0, 20):
            other = base + scale
            w2.append(wasserstein2_squared(base, sigma, other, sigma))
            eu.append(euclidean(base, other))
        assert np.corrcoef(w2, eu)[0, 1] > 0.9

    def test_tuple_wasserstein_averages_attributes(self, rng):
        mu_p, mu_q = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        sigma_p, sigma_q = np.abs(rng.normal(size=(3, 4))), np.abs(rng.normal(size=(3, 4)))
        per_attr = wasserstein2_squared(mu_p, sigma_p, mu_q, sigma_q)
        assert tuple_wasserstein(mu_p, sigma_p, mu_q, sigma_q) == pytest.approx(per_attr.mean())


class TestMahalanobis:
    def test_zero_for_identical(self, rng):
        mu, sigma = rng.normal(size=5), np.abs(rng.normal(size=5)) + 0.5
        assert mahalanobis_squared(mu, sigma, mu, sigma) == pytest.approx(0.0, abs=1e-9)

    def test_scaled_by_variance(self):
        mu_p, mu_q = np.array([1.0]), np.array([0.0])
        narrow = mahalanobis_squared(mu_p, np.array([0.1]), mu_q, np.array([0.1]))
        wide = mahalanobis_squared(mu_p, np.array([2.0]), mu_q, np.array([2.0]))
        assert narrow > wide

    def test_symmetry(self, rng):
        mu_p, mu_q = rng.normal(size=4), rng.normal(size=4)
        sigma_p, sigma_q = np.abs(rng.normal(size=4)) + 0.1, np.abs(rng.normal(size=4)) + 0.1
        assert mahalanobis_squared(mu_p, sigma_p, mu_q, sigma_q) == pytest.approx(
            mahalanobis_squared(mu_q, sigma_q, mu_p, sigma_p)
        )


class TestDifferentiableVersions:
    def test_tensor_matches_numpy(self, rng):
        mu_p, mu_q = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        sigma_p, sigma_q = np.abs(rng.normal(size=(2, 3))), np.abs(rng.normal(size=(2, 3)))
        tensor_version = wasserstein2_vector_t(Tensor(mu_p), Tensor(sigma_p), Tensor(mu_q), Tensor(sigma_q))
        assert np.allclose(tensor_version.data, wasserstein2_vector(mu_p, sigma_p, mu_q, sigma_q))

    def test_wasserstein_gradients(self, rng):
        inputs = [rng.normal(size=(2, 3)) for _ in range(4)]
        check_gradient(
            lambda a, b, c, d: wasserstein2_vector_t(a, b, c, d).sum(), inputs
        )

    def test_mahalanobis_gradients(self, rng):
        mu_p, mu_q = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        sigma_p, sigma_q = np.abs(rng.normal(size=(2, 3))) + 0.5, np.abs(rng.normal(size=(2, 3))) + 0.5
        check_gradient(
            lambda a, b, c, d: mahalanobis_vector_t(a, b, c, d).sum(),
            [mu_p, sigma_p, mu_q, sigma_q],
        )
