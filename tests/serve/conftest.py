"""Shared helpers for the serving-layer tests.

The serving tests mutate their task tables, so every helper builds a
*fresh* domain (deterministic generation — two builds with the same name
and scale are identical) instead of touching the session-scoped fixtures.

The matcher is the delta suite's distance matcher: a pure elementwise
function of the two IR tensors, so probabilities are independent of batch
composition and the daemon-vs-batch-oracle comparisons can demand exact
float equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import VAEConfig
from repro.core.pipeline import VAER
from repro.core.representation import EntityRepresentationModel
from repro.data.generators import load_domain


class DistanceMatcher:
    """Deterministic elementwise matcher (see tests/engine/test_delta.py)."""

    def predict_proba(self, left_irs, right_irs):
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


TINY_VAE = dict(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=7)


def build_served_model(name: str = "restaurants", scale: float = 0.2):
    """(domain, model) pair ready for ServeSession — fresh and mutable."""
    domain = load_domain(name, scale=scale)
    model = VAER()
    model.representation = EntityRepresentationModel(
        VAEConfig(**TINY_VAE), ir_method="lsa"
    ).fit(domain.task)
    model.task = domain.task
    model.matcher = DistanceMatcher()
    return domain, model


@pytest.fixture()
def build_model():
    """The model builder as a fixture, so tests avoid cross-module imports."""
    return build_served_model


@pytest.fixture()
def served(request):
    """A started session over a fresh restaurants domain; closed on teardown."""
    from repro.serve import ServeSession

    domain, model = build_served_model()
    session = ServeSession(model, k=4, batch_size=13).start()
    request.addfinalizer(session.close)
    return domain, session
