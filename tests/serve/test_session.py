"""ServeSession: snapshots, point queries, the single-writer mutation queue,
snapshot isolation under concurrent readers, and graceful close."""

import threading

import pytest

from repro.data.schema import Record
from repro.engine import merge_scored_batches
from repro.serve import (
    MutationSpec,
    ServeError,
    ServeSession,
    ServeSessionClosed,
)

def _edited_values(record, tag="EDIT"):
    return tuple(f"{tag}-{value}" for value in record.values)


class TestSnapshotAndPointQueries:
    def test_start_builds_generation_zero(self, served):
        domain, session = served
        snapshot = session.snapshot
        assert snapshot.generation == 0
        assert snapshot.left_rows == len(domain.task.left)
        assert snapshot.right_rows == len(domain.task.right)
        assert len(snapshot.pairs) > 0
        assert snapshot.match_count == sum(
            1 for _, _, p in snapshot.pairs if p > snapshot.threshold
        )

    def test_snapshot_matches_batch_resolve(self, served):
        domain, session = served
        merged = merge_scored_batches(list(session.model.resolve_delta(k=4, batch_size=13)))
        expected = [
            (pair.left_id, pair.right_id, float(p))
            for pair, p in zip(merged.pairs, merged.probabilities)
        ]
        assert list(session.snapshot.pairs) == expected

    def test_point_query_preserves_enumeration_order(self, served):
        _, session = served
        snapshot, all_pairs = session.resolve()
        left_id = all_pairs[0][0]
        _, selected = session.resolve([left_id])
        assert selected == [entry for entry in all_pairs if entry[0] == left_id]
        assert snapshot.generation == 0

    def test_point_query_unknown_left_id_is_empty(self, served):
        _, session = served
        _, selected = session.resolve(["no-such-record"])
        assert selected == []

    def test_query_records_scores_candidates(self, served):
        domain, session = served
        probe_source = domain.task.left.records()[0]
        snapshot, answers = session.query_records(
            [Record("probe-1", probe_source.values)], k=3
        )
        assert snapshot.generation == 0
        (answer,) = answers
        assert answer["record_id"] == "probe-1"
        assert 1 <= len(answer["candidates"]) <= 3
        for candidate in answer["candidates"]:
            assert candidate["right_id"] in domain.task.right
            assert 0.0 < candidate["probability"] <= 1.0
            assert candidate["match"] == (candidate["probability"] > snapshot.threshold)

    def test_query_records_validation(self, served):
        _, session = served
        with pytest.raises(ServeError):
            session.query_records([])
        with pytest.raises(ServeError):
            session.query_records([Record("p", ("only-one-value",))])
        with pytest.raises(ServeError):
            session.query_records([Record("p", ("a", "b", "c", "d", "e"))], k=0)


class TestMutations:
    def test_edit_delete_ingest_refresh(self, served):
        domain, session = served
        right = domain.task.right
        before = session.snapshot
        target = right.records()[3]
        victim_id = right.record_ids()[5]
        report = session.mutate(MutationSpec(
            side="right",
            edit=(Record(target.record_id, _edited_values(target)),),
            delete=(victim_id,),
            ingest=(Record("fresh-1", target.values),),
        ))
        after = session.snapshot
        assert after.generation == before.generation + 1
        assert report.generation == after.generation
        assert (report.edited, report.deleted, report.ingested) == (1, 1, 1)
        assert report.rows_reencoded >= 2  # the edit and the ingest
        assert report.rows_tombstoned >= 1
        assert report.pairs == len(after.pairs)
        assert victim_id not in right
        assert "fresh-1" in right
        assert right[target.record_id].values == _edited_values(target)

    def test_mutation_matches_batch_oracle(self, served):
        domain, session = served
        right = domain.task.right
        target = right.records()[2]
        session.mutate(MutationSpec(
            side="right", edit=(Record(target.record_id, _edited_values(target)),)
        ))
        merged = merge_scored_batches(list(session.model.resolve_delta(k=4, batch_size=13)))
        expected = [
            (pair.left_id, pair.right_id, float(p))
            for pair, p in zip(merged.pairs, merged.probabilities)
        ]
        assert list(session.snapshot.pairs) == expected

    def test_bad_mutation_is_atomic(self, served):
        domain, session = served
        right = domain.task.right
        revision = right.revision
        good = right.records()[0]
        with pytest.raises(ServeError):
            session.mutate(MutationSpec(
                side="right",
                edit=(Record(good.record_id, _edited_values(good)),),
                delete=("no-such-record",),
            ))
        # Nothing was applied and no snapshot was published.
        assert right.revision == revision
        assert right[good.record_id].values == good.values
        assert session.snapshot.generation == 0

    def test_mutation_spec_parsing(self):
        with pytest.raises(ServeError):
            MutationSpec.from_payload({"side": "middle", "delete": ["x"]})
        with pytest.raises(ServeError):
            MutationSpec.from_payload({"side": "right"})  # no-op mutation
        with pytest.raises(ServeError):
            MutationSpec.from_payload({"ingest": [{"record_id": "a"}]})  # no values
        with pytest.raises(ServeError):
            MutationSpec.from_payload({"delete": "not-a-list"})
        spec = MutationSpec.from_payload({
            "side": "right",
            "ingest": [{"record_id": "a", "values": ["x", "y"]}],
            "delete": ["b"],
        })
        assert spec.ingest[0].record_id == "a"
        assert spec.delete == ("b",)


class TestSnapshotIsolation:
    def test_readers_never_see_torn_state(self, served):
        """Concurrent point queries during mutations always observe one of
        the published snapshots, never a mix."""
        domain, session = served
        right = domain.task.right
        observed = []
        failures = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                snapshot, pairs = session.resolve()
                if len(pairs) != len(snapshot.pairs):
                    failures.append("pair list inconsistent with snapshot")
                observed.append(snapshot.generation)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for iteration in range(3):
                target = right.records()[iteration]
                session.mutate(MutationSpec(
                    side="right",
                    edit=(Record(target.record_id, _edited_values(target, f"G{iteration}")),),
                ))
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures
        assert session.snapshot.generation == 3
        # Readers saw only published generations, in non-decreasing order
        # per thread is not checkable after the merge, but the set must be
        # a subset of what the writer actually published.
        assert set(observed) <= {0, 1, 2, 3}


class TestLifecycle:
    def test_close_rejects_new_mutations(self, build_model):
        domain, model = build_model()
        session = ServeSession(model, k=4, batch_size=13).start()
        session.close()
        assert session.closed
        with pytest.raises(ServeSessionClosed):
            session.mutate(MutationSpec(side="right", delete=(domain.task.right.record_ids()[0],)))
        session.close()  # idempotent

    def test_reads_survive_close(self, served):
        _, session = served
        session.close()
        snapshot, pairs = session.resolve()
        assert snapshot.generation == 0 and pairs

    def test_constructor_validation(self, build_model):
        _, model = build_model()
        with pytest.raises(ValueError):
            ServeSession(model, batch_size=0)
        with pytest.raises(ValueError):
            ServeSession(model, workers=0)
        with pytest.raises(ValueError):
            ServeSession(model, k=-1)

    def test_unstarted_session_raises(self, build_model):
        _, model = build_model()
        session = ServeSession(model, k=4)
        with pytest.raises(RuntimeError):
            session.snapshot
        with pytest.raises(RuntimeError):
            session.mutate(MutationSpec(side="right", delete=("r0",)))
