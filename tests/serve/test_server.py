"""MatchServer: the JSON/HTTP protocol, error handling, graceful shutdown,
the CLI entry point, and daemon-vs-batch-oracle byte identity on every
registry domain."""

import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.data.generators import DOMAIN_NAMES
from repro.data.schema import Record
from repro.engine import merge_scored_batches
from repro.serve import MatchClient, MatchServer, ServeClientError, ServeSession, record_payload

K = 4
BATCH = 13


@pytest.fixture()
def server(build_model, request):
    domain, model = build_model()
    session = ServeSession(model, k=K, batch_size=BATCH).start()
    match_server = MatchServer(session).start()
    request.addfinalizer(match_server.shutdown)
    return domain, match_server, MatchClient(match_server.url)


class TestProtocol:
    def test_health(self, server):
        domain, _, client = server
        health = client.health()
        assert health["status"] == "ok"
        assert health["task"] == domain.task.name
        assert health["generation"] == 0
        assert health["left_rows"] == len(domain.task.left)
        assert health["right_rows"] == len(domain.task.right)
        assert health["pairs"] > 0

    def test_stats(self, server):
        _, _, client = server
        stats = client.stats()
        assert stats["generation"] == 0
        assert stats["queue_depth"] == 0
        assert stats["mutations_applied"] == 0
        assert stats["uptime_seconds"] >= 0
        assert stats["closed"] is False

    def test_resolve_roundtrips_floats_exactly(self, server):
        _, match_server, client = server
        response = client.resolve()
        snapshot = match_server.session.snapshot
        assert response["generation"] == snapshot.generation
        assert response["pairs"] == [list(entry) for entry in snapshot.pairs]
        # JSON floats use shortest-repr: the wire values are bit-exact.
        for (_, _, probability), (_, _, wire) in zip(snapshot.pairs, response["pairs"]):
            assert wire == probability

    def test_resolve_point_query(self, server):
        _, match_server, client = server
        all_pairs = client.resolve()["pairs"]
        left_id = all_pairs[0][0]
        selected = client.resolve([left_id])["pairs"]
        assert selected == [entry for entry in all_pairs if entry[0] == left_id]

    def test_query_endpoint(self, server):
        domain, _, client = server
        probe = domain.task.left.records()[0]
        response = client.query([record_payload("probe-1", probe.values)], k=3)
        (result,) = response["results"]
        assert result["record_id"] == "probe-1"
        assert result["candidates"]
        for candidate in result["candidates"]:
            assert set(candidate) == {"right_id", "probability", "distance", "match"}

    def test_mutate_endpoint(self, server):
        domain, _, client = server
        right = domain.task.right
        target = right.records()[1]
        report = client.mutate(
            edit=[record_payload(target.record_id, [f"X-{v}" for v in target.values])],
            delete=[right.record_ids()[4]],
        )
        assert report["generation"] == 1
        assert report["edited"] == 1 and report["deleted"] == 1
        assert client.health()["generation"] == 1
        assert client.stats()["mutations_applied"] == 1


class TestErrors:
    def test_unknown_paths_404(self, server):
        _, _, client = server
        for method, path in (("GET", "/nope"), ("POST", "/nope")):
            with pytest.raises(ServeClientError) as err:
                client._request(method, path, {} if method == "POST" else None)
            assert err.value.status == 404

    def test_invalid_json_400(self, server):
        import urllib.request

        _, match_server, _ = server
        request = urllib.request.Request(
            f"{match_server.url}/resolve", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_bad_resolve_payload_400(self, server):
        _, _, client = server
        with pytest.raises(ServeClientError) as err:
            client._request("POST", "/resolve", {"left_ids": "not-a-list"})
        assert err.value.status == 400

    def test_bad_query_payload_400(self, server):
        _, _, client = server
        for payload in ({}, {"records": []}, {"records": [{"record_id": "x"}]},
                        {"records": [{"record_id": "x", "values": ["a"] * 5}], "k": "three"}):
            with pytest.raises(ServeClientError) as err:
                client._request("POST", "/query", payload)
            assert err.value.status == 400

    def test_unknown_mutation_record_400_and_atomic(self, server):
        domain, _, client = server
        with pytest.raises(ServeClientError) as err:
            client.mutate(delete=["no-such-record"])
        assert err.value.status == 400
        assert client.health()["generation"] == 0


class TestShutdown:
    def test_shutdown_endpoint_drains_and_stops(self, build_model):
        _, model = build_model()
        session = ServeSession(model, k=K, batch_size=BATCH).start()
        match_server = MatchServer(session).start()
        client = MatchClient(match_server.url)
        assert client.shutdown()["status"] == "shutting down"
        deadline = time.monotonic() + 30
        while not session.closed and time.monotonic() < deadline:
            time.sleep(0.05)
        assert session.closed
        match_server.shutdown()  # idempotent

    def test_mutations_after_close_refused(self, build_model):
        domain, model = build_model()
        session = ServeSession(model, k=K, batch_size=BATCH).start()
        match_server = MatchServer(session).start()
        client = MatchClient(match_server.url)
        session.close()
        with pytest.raises(ServeClientError) as err:
            client.mutate(delete=[domain.task.right.record_ids()[0]])
        assert err.value.status == 503
        match_server.shutdown()


class TestRegistryEquivalence:
    """Acceptance criterion: daemon point-query results byte-identical to a
    batch ``VAER.resolve_delta`` over the same mutation sequence, on all 9
    registry domains."""

    @pytest.mark.parametrize("name", DOMAIN_NAMES)
    def test_daemon_matches_batch_oracle(self, name, build_model):
        domain, model = build_model(name)
        session = ServeSession(model, k=K, batch_size=BATCH).start()
        match_server = MatchServer(session).start()
        client = MatchClient(match_server.url)
        try:
            right_ids = domain.task.right.record_ids()
            edited = domain.task.right[right_ids[3]]
            new_values = tuple(f"X-{v}" for v in edited.values)
            client.mutate(
                edit=[record_payload(edited.record_id, new_values)],
                delete=[right_ids[5]],
            )
            client.mutate(ingest=[record_payload("fresh-1", edited.values)])
            daemon_pairs = client.resolve()["pairs"]
        finally:
            match_server.shutdown()

        oracle_domain, oracle = build_model(name)
        table = oracle_domain.task.right
        list(oracle.resolve_delta(k=K, batch_size=BATCH))
        table.replace(Record(right_ids[3], new_values))
        table.remove(right_ids[5])
        list(oracle.resolve_delta(k=K, batch_size=BATCH))
        table.add(Record("fresh-1", edited.values))
        merged = merge_scored_batches(list(oracle.resolve_delta(k=K, batch_size=BATCH)))
        oracle_pairs = [
            [pair.left_id, pair.right_id, float(p)]
            for pair, p in zip(merged.pairs, merged.probabilities)
        ]
        # Byte identity through the same serialisation the wire uses.
        assert json.dumps(daemon_pairs) == json.dumps(oracle_pairs)


class TestCLIEntryPoint:
    def test_python_m_repro_serve(self, tmp_path):
        """Boot the real daemon via the CLI, query it, shut it down."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--domain", "beer",
             "--scale", "0.2", "--k", "4", "--port", "0",
             "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        url = None
        try:
            deadline = time.monotonic() + 180
            for line in proc.stdout:
                match = re.search(r"serving on (http://\S+)", line)
                if match:
                    url = match.group(1)
                    break
                assert time.monotonic() < deadline, "daemon never reported its address"
            assert url is not None
            client = MatchClient(url)
            health = client.health()
            assert health["status"] == "ok" and health["pairs"] > 0
            report = client.mutate(delete=[client.resolve()["pairs"][0][1]])
            assert report["generation"] == 1
            client.shutdown()
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
