"""Analytic gradients of every primitive operation versus finite differences."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradient, concatenate, stack, where


@pytest.fixture
def arr(rng):
    return rng.normal(size=(3, 4))


class TestElementwiseGradients:
    def test_add(self, rng):
        check_gradient(lambda a, b: (a + b).sum(), [rng.normal(size=(2, 3)), rng.normal(size=(2, 3))])

    def test_add_broadcast(self, rng):
        check_gradient(lambda a, b: (a + b).sum(), [rng.normal(size=(2, 3)), rng.normal(size=(3,))])

    def test_mul(self, rng):
        check_gradient(lambda a, b: (a * b).sum(), [rng.normal(size=(2, 3)), rng.normal(size=(2, 3))])

    def test_mul_broadcast(self, rng):
        check_gradient(lambda a, b: (a * b).sum(), [rng.normal(size=(4,)), rng.normal(size=(2, 4))])

    def test_div(self, rng):
        a = rng.normal(size=(3,))
        b = rng.normal(size=(3,)) + 3.0
        check_gradient(lambda x, y: (x / y).sum(), [a, b])

    def test_pow(self, rng):
        check_gradient(lambda x: (x ** 3).sum(), [rng.normal(size=(3,))])

    def test_sub(self, rng):
        check_gradient(lambda a, b: (a - b).sum(), [rng.normal(size=(3,)), rng.normal(size=(3,))])


class TestNonlinearityGradients:
    def test_relu(self, rng):
        x = rng.normal(size=(5,)) + 0.3  # avoid points exactly at zero
        check_gradient(lambda t: t.relu().sum(), [x])

    def test_sigmoid(self, arr):
        check_gradient(lambda t: t.sigmoid().sum(), [arr])

    def test_tanh(self, arr):
        check_gradient(lambda t: t.tanh().sum(), [arr])

    def test_exp(self, arr):
        check_gradient(lambda t: t.exp().sum(), [arr])

    def test_log(self, rng):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda t: t.log().sum(), [x])

    def test_softplus(self, arr):
        check_gradient(lambda t: t.softplus().sum(), [arr])

    def test_abs(self, rng):
        x = rng.normal(size=(5,)) + np.sign(rng.normal(size=(5,))) * 0.5
        check_gradient(lambda t: t.abs().sum(), [x])

    def test_sqrt(self, rng):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda t: t.sqrt().sum(), [x])

    def test_maximum(self, rng):
        a = rng.normal(size=(5,))
        b = a + np.sign(rng.normal(size=(5,)))  # keep a gap so ties don't occur
        check_gradient(lambda x, y: x.maximum(y).sum(), [a, b])

    def test_clip(self, rng):
        x = rng.normal(size=(6,)) * 3
        check_gradient(lambda t: t.clip(-1.0, 1.0).sum(), [x])


class TestMatmulGradients:
    def test_2d_2d(self, rng):
        check_gradient(lambda a, b: (a @ b).sum(), [rng.normal(size=(3, 4)), rng.normal(size=(4, 2))])

    def test_1d_2d(self, rng):
        check_gradient(lambda a, b: (a @ b).sum(), [rng.normal(size=4), rng.normal(size=(4, 2))])

    def test_2d_1d(self, rng):
        check_gradient(lambda a, b: (a @ b).sum(), [rng.normal(size=(3, 4)), rng.normal(size=4)])

    def test_1d_1d(self, rng):
        check_gradient(lambda a, b: a @ b, [rng.normal(size=4), rng.normal(size=4)])


class TestReductionAndShapeGradients:
    def test_sum_axis(self, arr):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), [arr])

    def test_mean(self, arr):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), [arr])

    def test_reshape(self, arr):
        check_gradient(lambda t: (t.reshape(4, 3) ** 2).sum(), [arr])

    def test_transpose(self, arr):
        check_gradient(lambda t: (t.T ** 2).sum(), [arr])

    def test_getitem(self, arr):
        check_gradient(lambda t: (t[1:, :2] ** 2).sum(), [arr])

    def test_concatenate(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        check_gradient(lambda x, y: (concatenate([x, y], axis=1) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a, b = rng.normal(size=(3,)), rng.normal(size=(3,))
        check_gradient(lambda x, y: (stack([x, y], axis=0) ** 2).sum(), [a, b])

    def test_where(self, rng):
        a, b = rng.normal(size=(4,)), rng.normal(size=(4,))
        mask = rng.random(4) > 0.5
        check_gradient(lambda x, y: (where(mask, x, y) ** 2).sum(), [a, b])


class TestCompositeGradients:
    def test_mlp_like_composition(self, rng):
        def f(x, w1, w2):
            return ((x @ w1).relu() @ w2).sigmoid().sum()
        check_gradient(f, [rng.normal(size=(4, 3)), rng.normal(size=(3, 5)), rng.normal(size=(5, 1))])

    def test_vae_like_objective(self, rng):
        def f(mu, log_var):
            kl = -0.5 * (1.0 + log_var - mu * mu - log_var.exp()).sum(axis=-1)
            return kl.mean()
        check_gradient(f, [rng.normal(size=(3, 4)), rng.normal(size=(3, 4))])

    def test_wasserstein_like_objective(self, rng):
        def f(mu_a, mu_b, sig_a, sig_b):
            d = (mu_a - mu_b) * (mu_a - mu_b) + (sig_a - sig_b) * (sig_a - sig_b)
            return d.sum(axis=-1).mean()
        inputs = [rng.normal(size=(2, 3)) for _ in range(4)]
        check_gradient(f, inputs)

    def test_reused_tensor_accumulates(self, rng):
        # The same tensor used twice must receive the sum of both gradient paths.
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = (x * 2.0 + x * 3.0).sum()
        y.backward()
        assert np.allclose(x.grad, np.full(3, 5.0))


class TestBackwardSemantics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3).backward(np.ones((2, 2)))
        assert np.allclose(x.grad, 3 * np.ones((2, 2)))

    def test_no_grad_for_untracked_tensor(self):
        x = Tensor([1.0, 2.0])
        y = (x * 2).sum()
        y.backward()
        assert x.grad is None

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_repeated_backward_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3).sum().backward()
        (x * 3).sum().backward()
        assert np.allclose(x.grad, [6.0])
