"""Forward-pass correctness of Tensor operations against plain numpy."""

import numpy as np
import pytest

from repro.autograd import Tensor, concatenate, stack, where


class TestArithmetic:
    def test_add(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_add_scalar(self):
        assert np.allclose((Tensor([1.0, 2.0]) + 1.5).data, [2.5, 3.5])

    def test_radd(self):
        assert np.allclose((2.0 + Tensor([1.0])).data, [3.0])

    def test_sub(self):
        assert np.allclose((Tensor([5.0]) - Tensor([2.0])).data, [3.0])

    def test_rsub(self):
        assert np.allclose((10.0 - Tensor([4.0])).data, [6.0])

    def test_mul(self):
        assert np.allclose((Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])).data, [8.0, 15.0])

    def test_neg(self):
        assert np.allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_div(self):
        assert np.allclose((Tensor([6.0]) / Tensor([3.0])).data, [2.0])

    def test_rdiv(self):
        assert np.allclose((6.0 / Tensor([2.0])).data, [3.0])

    def test_pow(self):
        assert np.allclose((Tensor([2.0, 3.0]) ** 2).data, [4.0, 9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_broadcast_add(self):
        a = Tensor(np.ones((3, 4)))
        b = Tensor(np.arange(4.0))
        assert (a + b).shape == (3, 4)
        assert np.allclose((a + b).data[0], np.arange(4.0) + 1)


class TestMatmul:
    def test_2d_2d(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_1d_1d(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_1d_2d(self, rng):
        a, b = rng.normal(size=4), rng.normal(size=(4, 3))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_2d_1d(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=4)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestNonlinearities:
    def test_relu(self):
        assert np.allclose(Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0])

    def test_sigmoid_range(self, rng):
        out = Tensor(rng.normal(size=100) * 10).sigmoid().data
        assert np.all(out > 0) and np.all(out < 1)

    def test_sigmoid_midpoint(self):
        assert np.isclose(Tensor([0.0]).sigmoid().data[0], 0.5)

    def test_tanh(self):
        x = np.array([-1.0, 0.0, 1.0])
        assert np.allclose(Tensor(x).tanh().data, np.tanh(x))

    def test_exp_log_roundtrip(self, rng):
        x = np.abs(rng.normal(size=10)) + 0.1
        assert np.allclose(Tensor(x).log().exp().data, x)

    def test_softplus_matches_numpy(self, rng):
        x = rng.normal(size=20) * 5
        assert np.allclose(Tensor(x).softplus().data, np.logaddexp(0, x))

    def test_abs(self):
        assert np.allclose(Tensor([-2.0, 3.0]).abs().data, [2.0, 3.0])

    def test_sqrt(self):
        assert np.allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_clip(self):
        assert np.allclose(Tensor([-5.0, 0.5, 5.0]).clip(-1.0, 1.0).data, [-1.0, 0.5, 1.0])

    def test_maximum(self):
        out = Tensor([1.0, 5.0]).maximum(Tensor([3.0, 2.0]))
        assert np.allclose(out.data, [3.0, 5.0])


class TestReductions:
    def test_sum_all(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.isclose(Tensor(x).sum().data, x.sum())

    def test_sum_axis(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(Tensor(x).sum(axis=0).data, x.sum(axis=0))

    def test_sum_keepdims(self, rng):
        x = rng.normal(size=(3, 4))
        assert Tensor(x).sum(axis=1, keepdims=True).shape == (3, 1)

    def test_mean_all(self, rng):
        x = rng.normal(size=(5, 2))
        assert np.isclose(Tensor(x).mean().data, x.mean())

    def test_mean_axis(self, rng):
        x = rng.normal(size=(5, 2))
        assert np.allclose(Tensor(x).mean(axis=-1).data, x.mean(axis=-1))


class TestShapes:
    def test_reshape(self, rng):
        x = rng.normal(size=(2, 6))
        assert Tensor(x).reshape(3, 4).shape == (3, 4)

    def test_reshape_tuple(self, rng):
        x = rng.normal(size=(2, 6))
        assert Tensor(x).reshape((4, 3)).shape == (4, 3)

    def test_transpose(self, rng):
        x = rng.normal(size=(2, 5))
        assert np.allclose(Tensor(x).T.data, x.T)

    def test_getitem(self, rng):
        x = rng.normal(size=(4, 3))
        assert np.allclose(Tensor(x)[1:3].data, x[1:3])

    def test_len(self):
        assert len(Tensor(np.zeros((7, 2)))) == 7

    def test_item(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_repr_contains_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))


class TestConstructorsAndHelpers:
    def test_zeros_ones(self):
        assert np.all(Tensor.zeros(2, 3).data == 0)
        assert np.all(Tensor.ones(2, 3).data == 1)

    def test_randn_shape(self, rng):
        assert Tensor.randn(4, 5, rng=rng).shape == (4, 5)

    def test_detach_breaks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_concatenate(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        out = concatenate([Tensor(a), Tensor(b)], axis=1)
        assert np.allclose(out.data, np.concatenate([a, b], axis=1))

    def test_stack(self, rng):
        a, b = rng.normal(size=3), rng.normal(size=3)
        out = stack([Tensor(a), Tensor(b)], axis=0)
        assert np.allclose(out.data, np.stack([a, b]))

    def test_where(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        mask = a > b
        assert np.allclose(where(mask, Tensor(a), Tensor(b)).data, np.where(mask, a, b))

    def test_float64_coercion(self):
        assert Tensor(np.array([1, 2], dtype=np.int32)).data.dtype == np.float64
