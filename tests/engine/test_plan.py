"""ResolutionPlanner/Executor: stage graph, blocking equivalence, warm runs.

Three invariants pin the plan/execute refactor:

* the plan is pure metadata — stage graph and shard bounds derive from table
  sizes alone, no encoding;
* sharded blocking (worker-built hash maps + query fan-out) produces the
  *identical* candidate-pair list as the serial path, on every registry
  domain;
* planner-driven resolution is byte-identical to ``resolve_stream`` for any
  (k, batch_size, workers) combination, and a warm run against a chunked
  persistent cache encodes zero tables.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocking import NearestNeighbourSearch
from repro.config import BlockingConfig, MatcherConfig, VAERConfig, VAEConfig
from repro.core import VAER
from repro.data.generators import DOMAIN_NAMES, load_domain
from repro.engine import (
    PersistentEncodingCache,
    ResolutionExecutor,
    ResolutionPlanner,
    ShardedEncodingStore,
    build_index_sharded,
    merge_scored_batches,
    resolve_sharded,
    resolve_stream,
    sharded_candidate_pairs,
)
from repro.eval.timing import EngineCounters, ShardTimings, StageTimings
from repro.text.ir import IRGenerator

WORKERS = 2


@pytest.fixture(scope="module")
def planned_pipeline(tiny_domain):
    config = VAERConfig(
        vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=3, seed=3),
        matcher=MatcherConfig(epochs=10, mlp_hidden=(24, 12), seed=5),
    )
    model = VAER(config, shard_rows=16).fit_representation(tiny_domain.task)
    model.fit_matcher(tiny_domain.splits.train, tiny_domain.splits.validation)
    return model


class TestPlannerGraph:
    def test_plan_is_pure_metadata(self, tiny_domain, tiny_representation):
        """Planning must not encode a single record."""
        counters = EngineCounters()
        store = ShardedEncodingStore(
            tiny_representation, tiny_domain.task, counters=counters, shard_rows=16
        )
        ResolutionPlanner.from_store(store, k=5, batch_size=32, workers=4).plan()
        assert counters.tables_encoded == 0
        assert counters.cache_misses == 0

    def test_stage_graph_shape(self, tiny_domain):
        plan = ResolutionPlanner(tiny_domain.task, k=5, batch_size=32, workers=4, shard_rows=16).plan()
        assert [stage.name for stage in plan.stages] == ["encode", "block", "score"]
        assert plan.stage("encode").depends_on == ()
        assert plan.stage("block").depends_on == ("encode",)
        assert plan.stage("score").depends_on == ("block",)
        with pytest.raises(KeyError):
            plan.stage("transmogrify")

    def test_bounds_cover_both_tables(self, tiny_domain):
        plan = ResolutionPlanner(tiny_domain.task, shard_rows=16).plan()
        assert plan.query_bounds[0].start == 0
        assert plan.query_bounds[-1].stop == len(tiny_domain.task.left)
        assert plan.build_bounds[-1].stop == len(tiny_domain.task.right)
        for previous, current in zip(plan.query_bounds, plan.query_bounds[1:]):
            assert previous.stop == current.start
        # The block stage schedules one build unit per right shard and one
        # query unit per left shard.
        assert plan.stage("block").num_units == len(plan.build_bounds) + len(plan.query_bounds)

    def test_max_batches_upper_bound(self, tiny_domain):
        plan = ResolutionPlanner(tiny_domain.task, k=5, batch_size=17).plan()
        n = len(tiny_domain.task.left)
        assert plan.max_batches() == (n * 5 + 16) // 17

    def test_describe_mentions_every_stage(self, tiny_domain):
        plan = ResolutionPlanner(tiny_domain.task, k=5, batch_size=32, workers=4, shard_rows=16).plan()
        text = plan.describe()
        for token in ("encode", "block", "score", "workers=4", "shard_rows=16", tiny_domain.task.name):
            assert token in text

    def test_describe_elides_units_past_the_limit(self, tiny_domain):
        """Long stages are cut at max_units with an explicit '+N more' line."""
        plan = ResolutionPlanner(tiny_domain.task, shard_rows=4).plan()
        block = plan.stage("block")
        assert block.num_units > 3
        text = plan.describe(max_units=2)
        assert f"... (+{block.num_units - 2} more)" in text
        # A generous limit prints every unit and no ellipsis.
        full = plan.describe(max_units=1000)
        assert "more)" not in full
        for unit in block.units:
            assert unit.name in full

    def test_describe_lists_rows_and_details(self, tiny_domain):
        plan = ResolutionPlanner(tiny_domain.task, k=5, shard_rows=16).plan()
        text = plan.describe()
        assert f"({len(tiny_domain.task.left)} rows)" in text  # encode unit annotation
        assert "IR transform + VAE forward" in text
        assert "top-5" in text
        # Stage positions and dependency arrows appear in graph order.
        assert text.index("[1] encode") < text.index("[2] block <- encode") < text.index("[3] score <- block")

    def test_invalid_knobs_rejected(self, tiny_domain):
        for kwargs in ({"k": 0}, {"batch_size": 0}, {"workers": 0}, {"shard_rows": 0}):
            with pytest.raises(ValueError):
                ResolutionPlanner(tiny_domain.task, **kwargs)

    def test_from_store_adopts_shard_layout(self, tiny_domain, tiny_representation):
        store = ShardedEncodingStore(
            tiny_representation, tiny_domain.task, counters=EngineCounters(), shard_rows=16
        )
        plan = ResolutionPlanner.from_store(store, workers=2).plan()
        assert plan.shard_rows == 16
        assert [(b.start, b.stop) for b in plan.query_bounds] == [
            (b.start, b.stop) for b in store.shard_bounds("left")
        ]

    def test_pipeline_plan_resolution(self, planned_pipeline, tiny_domain):
        plan = planned_pipeline.plan_resolution(k=5, batch_size=32, workers=3)
        assert plan.workers == 3 and plan.shard_rows == 16
        assert plan.left_rows == len(tiny_domain.task.left)


def _domain_vectors(name: str):
    """Record-level LSA IR vectors of a registry domain (no VAE needed)."""
    domain = load_domain(name, scale=0.25)
    generator = IRGenerator(method="lsa", dim=12).fit(domain.task)
    left = generator.transform_table(domain.task.left)
    right = generator.transform_table(domain.task.right)
    return (
        right.reshape(len(right), -1),
        list(domain.task.right.record_ids()),
        left.reshape(len(left), -1),
        list(domain.task.left.record_ids()),
    )


class TestShardedBlockingEquivalence:
    @pytest.mark.parametrize("name", DOMAIN_NAMES)
    def test_identical_candidate_pairs_on_every_registry_domain(self, name):
        vectors, keys, query_vectors, query_keys = _domain_vectors(name)
        config = BlockingConfig(seed=17)
        serial = (
            NearestNeighbourSearch(config)
            .build(vectors, keys)
            .candidate_pairs(query_vectors, query_keys, k=5)
        )
        sharded = sharded_candidate_pairs(
            vectors, keys, query_vectors, query_keys,
            blocking=config, k=5, workers=WORKERS, shard_rows=7,
        )
        assert [p.key() for p in sharded] == [p.key() for p in serial]

    def test_sharded_build_matches_serial_tables(self):
        rng = np.random.default_rng(5)
        vectors = rng.normal(size=(45, 6))
        keys = [f"r{i}" for i in range(45)]
        config = BlockingConfig(seed=3)
        serial = NearestNeighbourSearch(config).build(vectors, keys).index
        sharded = build_index_sharded(vectors, keys, blocking=config, workers=3, shard_rows=10)
        assert len(serial._tables) == len(sharded._tables)
        for serial_table, sharded_table in zip(serial._tables, sharded._tables):
            assert dict(serial_table) == dict(sharded_table)

    def test_single_worker_path_is_serial(self):
        rng = np.random.default_rng(9)
        vectors = rng.normal(size=(20, 4))
        keys = [f"r{i}" for i in range(20)]
        queries = rng.normal(size=(8, 4))
        query_keys = [f"q{i}" for i in range(8)]
        one = sharded_candidate_pairs(vectors, keys, queries, query_keys, k=3, workers=1, shard_rows=6)
        two = sharded_candidate_pairs(vectors, keys, queries, query_keys, k=3, workers=2, shard_rows=6)
        assert [p.key() for p in one] == [p.key() for p in two]

    def test_stage_timings_record_blocking_work(self):
        rng = np.random.default_rng(2)
        vectors = rng.normal(size=(30, 4))
        keys = [f"r{i}" for i in range(30)]
        timings = StageTimings()
        sharded_candidate_pairs(
            vectors, keys, vectors, keys, k=3, workers=2, shard_rows=8, stage_timings=timings
        )
        assert timings.seconds("block-build") >= 0.0
        # Units count *planned* shards covered, however the cost model
        # groups them into pool tasks.
        assert timings.units("block-query") == 4  # 30 rows in shards of 8
        assert timings.seconds("dispatch") >= 0.0
        assert timings.seconds("block-ipc") >= 0.0
        assert 1 <= timings.counter("query_tasks") <= 4


class TestPlannerResolveEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(
        batch_size=st.integers(min_value=1, max_value=40),
        k=st.integers(min_value=1, max_value=8),
        workers=st.integers(min_value=2, max_value=3),
    )
    def test_planner_resolve_byte_identical_to_stream(self, planned_pipeline, batch_size, k, workers):
        store, matcher = planned_pipeline.store, planned_pipeline.matcher
        streamed = merge_scored_batches(resolve_stream(store, matcher, k=k, batch_size=batch_size))
        planned = merge_scored_batches(
            resolve_sharded(store, matcher, k=k, batch_size=batch_size, workers=workers)
        )
        assert [p.key() for p in planned.pairs] == [p.key() for p in streamed.pairs]
        np.testing.assert_array_equal(planned.probabilities, streamed.probabilities)

    def test_executor_run_equals_stream(self, planned_pipeline):
        """Driving the executor directly (no front-end) stays byte-identical."""
        store, matcher = planned_pipeline.store, planned_pipeline.matcher
        plan = ResolutionPlanner.from_store(store, k=5, batch_size=13, workers=2).plan()
        shard_timings = ShardTimings()
        stage_timings = StageTimings()
        executor = ResolutionExecutor(
            plan, store, matcher, threshold=planned_pipeline.threshold,
            shard_timings=shard_timings, stage_timings=stage_timings,
        )
        planned = merge_scored_batches(executor.run())
        streamed = merge_scored_batches(
            resolve_stream(store, matcher, k=5, batch_size=13, threshold=planned_pipeline.threshold)
        )
        assert [p.key() for p in planned.pairs] == [p.key() for p in streamed.pairs]
        np.testing.assert_array_equal(planned.probabilities, streamed.probabilities)
        # Every stage of the graph reported compute time, plus the pooled
        # dispatch/IPC/merge breakdown.
        assert set(stage_timings.stages()) == {
            "encode", "block", "score", "dispatch", "block-ipc", "merge",
        }
        assert stage_timings.counter("query_tasks") >= 1
        assert shard_timings.total_pairs() == len(planned)

    def test_oversized_k_and_batch(self, planned_pipeline):
        store, matcher = planned_pipeline.store, planned_pipeline.matcher
        streamed = merge_scored_batches(resolve_stream(store, matcher, k=100, batch_size=10_000))
        planned = merge_scored_batches(
            resolve_sharded(store, matcher, k=100, batch_size=10_000, workers=2)
        )
        assert [p.key() for p in planned.pairs] == [p.key() for p in streamed.pairs]
        np.testing.assert_array_equal(planned.probabilities, streamed.probabilities)

    def test_batches_emitted_in_index_order(self, planned_pipeline):
        indices = [
            batch.batch_index
            for batch in resolve_sharded(
                planned_pipeline.store, planned_pipeline.matcher, k=5, batch_size=13, workers=2
            )
        ]
        assert indices == list(range(len(indices)))


class TestWarmChunkedCacheResolve:
    def test_warm_run_encodes_nothing_and_loads_every_chunk_once(self, tiny_domain, tiny_representation, tmp_path):
        cache = PersistentEncodingCache(tmp_path / "plan-cache", chunk_rows=16)
        matcher_config = MatcherConfig(epochs=8, mlp_hidden=(24, 12), seed=5)
        from repro.core.matcher import fit_matcher_with_threshold

        matcher, threshold = fit_matcher_with_threshold(
            tiny_representation, tiny_domain.task,
            tiny_domain.splits.train, tiny_domain.splits.validation,
            config=matcher_config,
        )

        cold_store = ShardedEncodingStore(
            tiny_representation, tiny_domain.task,
            counters=EngineCounters(), persistent=cache, shard_rows=16,
        )
        cold = merge_scored_batches(
            resolve_sharded(cold_store, matcher, k=5, batch_size=13, threshold=threshold, workers=2)
        )
        assert cold_store.counters.tables_encoded == 2

        expected_chunks = sum(
            len(list(cache.dir_for(tiny_domain.task.name, side, tiny_representation.encoding_version).glob("chunk-*.npz")))
            for side in ("left", "right")
        )
        warm_store = ShardedEncodingStore(
            tiny_representation, tiny_domain.task,
            counters=EngineCounters(), persistent=cache, shard_rows=16,
        )
        warm = merge_scored_batches(
            resolve_sharded(warm_store, matcher, k=5, batch_size=13, threshold=threshold, workers=2)
        )
        assert warm_store.counters.tables_encoded == 0, "warm planner run must not encode"
        assert warm_store.counters.disk_hits == 2
        assert warm_store.counters.chunk_loads == expected_chunks, (
            "warm run must load each chunk it needs exactly once"
        )
        assert [p.key() for p in warm.pairs] == [p.key() for p in cold.pairs]
        np.testing.assert_array_equal(warm.probabilities, cold.probabilities)
