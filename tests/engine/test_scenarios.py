"""Scenario regressions: every resolution path agrees on real generated domains.

Each scenario pulls a domain from the generator registry (clean and noisy —
exercising the corruption model end to end), trains one representation and
one matcher, and resolves the task three ways:

* monolithic :meth:`VAER.resolve` (everything scored at once);
* streamed :meth:`VAER.resolve_stream` (bounded-memory batches);
* sharded ``resolve_stream(workers=N)`` (parallel worker-pool scoring).

The three paths must produce the same candidate enumeration, the same match
set and the same threshold; streamed and sharded must be *byte-identical*.
Worker count is taken from ``REPRO_ENGINE_WORKERS`` (default 2) so CI can
re-run the suite at different pool sizes.
"""

import os

import numpy as np
import pytest

from repro.config import MatcherConfig, VAERConfig, VAEConfig
from repro.core import VAER
from repro.data.generators import CLEAN_DOMAINS, NOISY_DOMAINS, domain_spec, load_domain
from repro.engine import merge_scored_batches
from repro.eval.timing import ShardTimings

WORKERS = int(os.environ.get("REPRO_ENGINE_WORKERS", "2"))

#: One clean and one noisy registry domain: the corruption model is a no-typo
#: configuration for the former and the full typo/abbreviation/drop mix for
#: the latter, so both generator paths flow through resolution.
SCENARIOS = ["restaurants", "beer"]


@pytest.fixture(scope="module", params=SCENARIOS)
def scenario(request):
    domain = load_domain(request.param, scale=0.3)
    config = VAERConfig(
        vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=3, seed=11),
        matcher=MatcherConfig(epochs=10, mlp_hidden=(24, 12), seed=13),
    )
    model = VAER(config).fit_representation(domain.task)
    model.fit_matcher(domain.splits.train, domain.splits.validation)
    return domain, model


class TestScenarioEquivalence:
    def test_registry_covers_clean_and_noisy(self):
        kinds = {name: domain_spec(name).clean for name in SCENARIOS}
        assert True in kinds.values() and False in kinds.values()
        assert set(CLEAN_DOMAINS) & set(kinds) and set(NOISY_DOMAINS) & set(kinds)

    def test_three_paths_identical(self, scenario):
        domain, model = scenario
        monolithic = model.resolve(k=5)

        streamed_batches = list(model.resolve_stream(k=5, batch_size=17))
        streamed = merge_scored_batches(streamed_batches)

        timings = ShardTimings()
        sharded_batches = list(
            model.resolve_stream(k=5, batch_size=17, workers=WORKERS, shard_timings=timings)
        )
        sharded = merge_scored_batches(sharded_batches)

        # Identical candidate enumeration, in order.
        keys = [p.key() for p in monolithic.pairs]
        assert [p.key() for p in streamed.pairs] == keys
        assert [p.key() for p in sharded.pairs] == keys

        # Streamed and sharded score the same batches: byte-identical.
        np.testing.assert_array_equal(sharded.probabilities, streamed.probabilities)
        # Monolithic scores in one batch; agreement to tight tolerance.
        np.testing.assert_allclose(streamed.probabilities, monolithic.probabilities, atol=1e-8)

        # Identical thresholds and identical match sets on every path.
        assert monolithic.threshold == streamed.threshold == sharded.threshold == model.threshold
        monolithic_matches = {p.key() for p in monolithic.matches()}
        assert {p.key() for p in streamed.matches()} == monolithic_matches
        assert {p.key() for p in sharded.matches()} == monolithic_matches

        # The pool actually timed every batch it scored.
        assert len(timings) == len(sharded_batches)
        assert timings.total_pairs() == len(sharded)

    def test_sharded_batches_arrive_in_order(self, scenario):
        _, model = scenario
        indices = [b.batch_index for b in model.resolve_stream(k=5, batch_size=17, workers=WORKERS)]
        assert indices == list(range(len(indices)))

    def test_incremental_scenario_appended_table(self):
        """The growing-table scenario end to end through ``VAER``.

        Resolve once incrementally (captures the baseline), append rows to
        the right table (``REPRO_ENGINE_APPEND_ROWS`` sizes the delta — CI's
        third engine run raises it), resolve incrementally again, and demand
        (a) only the appended rows were re-encoded and (b) the same match
        set as a cold full resolve of the grown task.
        """
        from repro.data.generators import append_rows
        from repro.engine import ShardedEncodingStore, resolve_stream
        from repro.eval.timing import EngineCounters, StageTimings

        append = int(os.environ.get("REPRO_ENGINE_APPEND_ROWS", "10"))
        domain = load_domain("citations2", scale=0.25)
        config = VAERConfig(
            vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2, seed=7),
            matcher=MatcherConfig(epochs=8, mlp_hidden=(16, 8), seed=9),
        )
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
        model = VAER(config, cache_dir=cache_dir).fit_representation(domain.task)
        model.fit_matcher(domain.splits.train, domain.splits.validation)

        base = merge_scored_batches(model.resolve_stream(k=5, batch_size=17, incremental=True))
        append_rows(domain, side="right", rows=append)

        timings = StageTimings()
        counters = model.store.counters
        rows_before, tables_before = counters.rows_reencoded, counters.tables_encoded
        delta = merge_scored_batches(
            model.resolve_stream(k=5, batch_size=17, incremental=True, stage_timings=timings)
        )
        assert counters.tables_encoded == tables_before, "delta must not re-encode tables"
        assert counters.rows_reencoded - rows_before == append
        assert timings.counter("rows_reencoded") == append
        assert 0 < timings.counter("pairs_rescored") <= len(delta)
        assert len(delta) >= len(base)

        cold_store = ShardedEncodingStore(
            model.representation, domain.task, counters=EngineCounters()
        )
        cold = merge_scored_batches(
            resolve_stream(cold_store, model.matcher, blocking=config.blocking,
                           k=5, batch_size=17, threshold=model.threshold)
        )
        assert [p.key() for p in delta.pairs] == [p.key() for p in cold.pairs]
        np.testing.assert_allclose(delta.probabilities, cold.probabilities, atol=1e-9)
        assert {p.key() for p in delta.matches()} == {p.key() for p in cold.matches()}

    def test_incremental_scenario_mutated_table(self):
        """The mixed mutation scenario end to end through ``VAER``.

        Resolve once incrementally (captures the baseline), edit
        ``REPRO_ENGINE_EDIT_ROWS`` rows in place, delete
        ``REPRO_ENGINE_DELETE_ROWS`` rows, append a few, resolve
        incrementally again — CI's fourth engine run raises the knobs — and
        demand (a) re-encode work equals exactly edits + appends, (b) no
        deleted row in the candidate stream, and (c) the same match set as a
        cold full resolve of the mutated task.
        """
        from repro.data.generators import append_rows, delete_rows, mutate_rows
        from repro.engine import ShardedEncodingStore, resolve_stream
        from repro.eval.timing import EngineCounters, StageTimings

        edits = int(os.environ.get("REPRO_ENGINE_EDIT_ROWS", "6"))
        deletes = int(os.environ.get("REPRO_ENGINE_DELETE_ROWS", "4"))
        appends = 8
        domain = load_domain("software", scale=0.25)
        config = VAERConfig(
            vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2, seed=7),
            matcher=MatcherConfig(epochs=8, mlp_hidden=(16, 8), seed=9),
        )
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
        model = VAER(config, cache_dir=cache_dir).fit_representation(domain.task)
        model.fit_matcher(domain.splits.train, domain.splits.validation)

        merge_scored_batches(model.resolve_stream(k=5, batch_size=17, incremental=True))
        deleted = delete_rows(domain, side="right", rows=deletes)
        mutate_rows(domain, side="right", rows=edits)
        appended = append_rows(domain, side="right", rows=appends)
        gone = {r.record_id for r in deleted} - {r.record_id for r in appended}

        timings = StageTimings()
        counters = model.store.counters
        rows_before, tables_before = counters.rows_reencoded, counters.tables_encoded
        delta = merge_scored_batches(
            model.resolve_stream(k=5, batch_size=17, incremental=True, stage_timings=timings)
        )
        assert counters.tables_encoded == tables_before, "delta must not re-encode tables"
        assert counters.rows_reencoded - rows_before == edits + appends
        assert timings.counter("rows_reencoded") == edits + appends
        assert timings.counter("rows_tombstoned") <= deletes
        assert 0 < timings.counter("pairs_rescored") <= len(delta)
        assert all(p.right_id not in gone for p in delta.pairs)

        cold_store = ShardedEncodingStore(
            model.representation, domain.task, counters=EngineCounters()
        )
        cold = merge_scored_batches(
            resolve_stream(cold_store, model.matcher, blocking=config.blocking,
                           k=5, batch_size=17, threshold=model.threshold)
        )
        assert [p.key() for p in delta.pairs] == [p.key() for p in cold.pairs]
        np.testing.assert_allclose(delta.probabilities, cold.probabilities, atol=1e-9)
        assert {p.key() for p in delta.matches()} == {p.key() for p in cold.matches()}

    def test_corruption_registry_end_to_end(self):
        """A freshly generated noisy domain (new seed) resolves identically too."""
        domain = load_domain("cosmetics", scale=0.25, seed=123)
        config = VAERConfig(
            vae=VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=2, seed=3),
            matcher=MatcherConfig(epochs=6, mlp_hidden=(16, 8), seed=5),
        )
        model = VAER(config).fit_representation(domain.task)
        model.fit_matcher(domain.splits.train, domain.splits.validation)
        streamed = merge_scored_batches(model.resolve_stream(k=4, batch_size=23))
        sharded = merge_scored_batches(model.resolve_stream(k=4, batch_size=23, workers=WORKERS))
        assert [p.key() for p in sharded.pairs] == [p.key() for p in streamed.pairs]
        np.testing.assert_array_equal(sharded.probabilities, streamed.probabilities)
        assert {p.key() for p in sharded.matches()} == {p.key() for p in streamed.matches()}
