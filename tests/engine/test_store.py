"""The batched encoding engine: caching, invalidation and score equality."""

import numpy as np
import pytest

from repro.core.active.sampler import _pair_latent_distances_loop, pair_latent_distances
from repro.core.distances import tuple_wasserstein
from repro.core.matcher import pair_ir_arrays
from repro.core.transfer import transfer_representation
from repro.data.pairs import LabeledPair, RecordPair
from repro.engine import EncodingStore
from repro.eval.timing import EngineCounters


@pytest.fixture()
def store(tiny_domain, tiny_representation):
    return EncodingStore(tiny_representation, tiny_domain.task, counters=EngineCounters())


@pytest.fixture(scope="module")
def some_pairs(tiny_domain):
    """A pair pool referencing many records more than once."""
    left_ids = tiny_domain.task.left.record_ids()
    right_ids = tiny_domain.task.right.record_ids()
    return [
        RecordPair(left_ids[i % len(left_ids)], right_ids[(i * 7 + j) % len(right_ids)])
        for i in range(12)
        for j in range(4)
    ]


def test_engine_importable_before_core():
    """Importing repro.engine first must not trip the engine<->core cycle."""
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-c", "import repro.engine, repro.core"],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr


class TestCaching:
    def test_first_access_is_a_miss(self, store):
        store.table_encodings("left")
        assert store.counters.cache_misses == 1
        assert store.counters.cache_hits == 0

    def test_repeated_access_hits_and_returns_same_object(self, store):
        first = store.table_encodings("left")
        second = store.table_encodings("left")
        assert first is second
        assert store.counters.cache_hits == 1
        assert store.counters.encodes_avoided == len(first)

    def test_sides_cached_independently(self, store, tiny_domain):
        assert len(store.table_encodings("left")) == len(tiny_domain.task.left)
        assert len(store.table_encodings("right")) == len(tiny_domain.task.right)
        assert store.counters.cache_misses == 2

    def test_unknown_side_rejected(self, store):
        with pytest.raises(ValueError):
            store.table_encodings("middle")

    def test_unknown_record_rejected(self, store):
        with pytest.raises(KeyError):
            store.table_encodings("left").rows(["no-such-record"])

    def test_invalidate_forces_recompute(self, store):
        first = store.table_encodings("left")
        store.invalidate()
        second = store.table_encodings("left")
        assert first is not second
        np.testing.assert_allclose(first.mu, second.mu)


class TestInvalidation:
    def test_refit_ir_invalidates(self, tiny_domain, small_vae_config):
        from repro.core.representation import EntityRepresentationModel

        model = EntityRepresentationModel(small_vae_config, ir_method="w2v").fit(tiny_domain.task)
        store = EncodingStore(model, tiny_domain.task, counters=EngineCounters())
        before = store.table_encodings("left")
        model.refit_ir_only(tiny_domain.task)
        after = store.table_encodings("left")
        assert before is not after
        assert store.counters.cache_misses == 2

    def test_refit_vae_invalidates(self, tiny_domain, tiny_representation, small_vae_config, store):
        store.table_encodings("left")
        version = tiny_representation.encoding_version
        # Refitting bumps the version token, so the next access recomputes.
        # (Use a throwaway model to avoid perturbing the session fixture.)
        from repro.core.representation import EntityRepresentationModel

        model = EntityRepresentationModel(small_vae_config, ir_method="lsa").fit(tiny_domain.task)
        own_store = EncodingStore(model, tiny_domain.task, counters=EngineCounters())
        stale = own_store.table_encodings("left")
        model.fit(tiny_domain.task, epochs=1)
        fresh = own_store.table_encodings("left")
        assert stale is not fresh
        assert tiny_representation.encoding_version == version  # fixture untouched

    def test_transfer_yields_fresh_store_state(self, tiny_domain, tiny_representation):
        transferred = transfer_representation(tiny_representation, tiny_domain.task)
        store = EncodingStore(transferred, tiny_domain.task, counters=EngineCounters())
        encodings = store.table_encodings("left")
        assert encodings.mu.shape[0] == len(tiny_domain.task.left)
        # The transferred model carries its own version counter; mutating it
        # later invalidates this store, not stores of the source model.
        transferred.refit_ir_only(tiny_domain.task)
        assert store.table_encodings("left") is not encodings


class TestBatchedEqualsLegacy:
    def test_encodings_match_encode_table(self, store, tiny_domain, tiny_representation):
        legacy = tiny_representation.encode_table(tiny_domain.task.left)
        cached = store.entity_encoding("left")
        assert cached.keys == legacy.keys
        np.testing.assert_allclose(cached.mu, legacy.mu, atol=1e-8)
        np.testing.assert_allclose(cached.sigma, legacy.sigma, atol=1e-8)

    def test_pair_ir_arrays_match_legacy(self, store, tiny_domain, tiny_representation, some_pairs):
        labeled = [LabeledPair(p.left_id, p.right_id, i % 2) for i, p in enumerate(some_pairs)]
        legacy = pair_ir_arrays(tiny_representation, tiny_domain.task, labeled)
        batched = pair_ir_arrays(tiny_representation, tiny_domain.task, labeled, store=store)
        for l_arr, b_arr in zip(legacy, batched):
            np.testing.assert_allclose(b_arr, l_arr, atol=1e-8)

    def test_pair_latent_distances_match_loop(self, store, tiny_domain, tiny_representation, some_pairs):
        vectorized = pair_latent_distances(tiny_domain.task, tiny_representation, some_pairs, store=store)
        loop = _pair_latent_distances_loop(tiny_domain.task, tiny_representation, some_pairs)
        np.testing.assert_allclose(vectorized, loop, atol=1e-8)

    def test_pair_latent_distances_builds_own_store(self, tiny_domain, tiny_representation, some_pairs):
        vectorized = pair_latent_distances(tiny_domain.task, tiny_representation, some_pairs)
        loop = _pair_latent_distances_loop(tiny_domain.task, tiny_representation, some_pairs)
        np.testing.assert_allclose(vectorized, loop, atol=1e-8)

    def test_tuple_wasserstein_matches_loop(self, store, tiny_domain, tiny_representation, some_pairs):
        vectorized = store.pair_tuple_wasserstein(some_pairs)
        left = tiny_representation.encode_table(tiny_domain.task.left)
        right = tiny_representation.encode_table(tiny_domain.task.right)
        for pair, got in zip(some_pairs, vectorized):
            mu_s, sigma_s = left.of(pair.left_id)
            mu_t, sigma_t = right.of(pair.right_id)
            assert got == pytest.approx(tuple_wasserstein(mu_s, sigma_s, mu_t, sigma_t), abs=1e-8)


class TestEmptyAndCounters:
    def test_empty_pairs_have_empty_shapes(self, store, tiny_domain, tiny_representation):
        left, right, labels = store.pair_ir_arrays([])
        arity, dim = tiny_domain.task.arity, tiny_representation.config.ir_dim
        assert left.shape == (0, arity, dim) and right.shape == (0, arity, dim)
        assert labels.shape == (0,)
        assert store.pair_latent_distances([]).shape == (0,)
        assert store.pair_tuple_wasserstein([]).shape == (0,)

    def test_pairs_scored_counted(self, store, some_pairs):
        store.pair_latent_distances(some_pairs)
        assert store.counters.pairs_scored == len(some_pairs)

    def test_gather_counts_saved_work_not_raw_lookups(self, store, some_pairs):
        store.gather_pair_irs(some_pairs)  # cold: both sides computed
        assert store.counters.cache_hits == 0
        assert store.counters.cache_misses == 2
        assert store.counters.encodes_avoided == 0
        store.gather_pair_irs(some_pairs)  # warm: one logical hit per side
        assert store.counters.cache_hits == 2
        # The legacy path would have re-encoded each pair's two records.
        assert store.counters.encodes_avoided == 2 * len(some_pairs)

    def test_pair_rows_is_silent_indexing(self, store, some_pairs):
        store.table_encodings("left")
        store.table_encodings("right")
        hits_before = store.counters.cache_hits
        store.pair_rows(some_pairs)
        assert store.counters.cache_hits == hits_before

    def test_stats_snapshot(self, store):
        store.table_encodings("left")
        stats = store.stats()
        assert set(stats) == {
            "cache_hits", "cache_misses", "encodes_avoided", "pairs_scored",
            "tables_encoded", "disk_hits", "disk_misses", "chunk_loads",
            "rows_reencoded", "rows_tombstoned", "chunks_patched",
            "pairs_rescored", "fingerprints_computed",
            "bytes_stored", "bytes_decoded",
        }
        assert stats["cache_misses"] == 1
        assert stats["tables_encoded"] == 1
        assert stats["disk_hits"] == 0 and stats["disk_misses"] == 0  # no cache attached

    def test_stats_is_defensive_copy(self, store):
        """Mutating a snapshot must not perturb the live counters."""
        store.table_encodings("left")
        snapshot = store.stats()
        snapshot["cache_misses"] = 999
        snapshot["tables_encoded"] = 999
        assert store.counters.cache_misses == 1
        assert store.counters.tables_encoded == 1
        assert store.stats()["cache_misses"] == 1
        # Snapshots taken at different times are independent objects.
        assert store.stats() is not store.stats()

    def test_counter_reset(self):
        counters = EngineCounters(
            cache_hits=3, cache_misses=1, encodes_avoided=40, pairs_scored=7,
            tables_encoded=2, disk_hits=1, disk_misses=1,
        )
        assert counters.hit_rate() == pytest.approx(0.75)
        counters.reset()
        assert counters.as_dict() == {
            "cache_hits": 0, "cache_misses": 0, "encodes_avoided": 0, "pairs_scored": 0,
            "tables_encoded": 0, "disk_hits": 0, "disk_misses": 0, "chunk_loads": 0,
            "rows_reencoded": 0, "rows_tombstoned": 0, "chunks_patched": 0,
            "pairs_rescored": 0, "fingerprints_computed": 0,
            "bytes_stored": 0, "bytes_decoded": 0,
        }
        assert counters.hit_rate() == 0.0
