"""Quantized encoding tier: codecs, code arrays, asymmetric distances.

Three contracts pin the int8 tier:

* **Bounded reconstruction** — per-dimension affine int8 decode is within
  ``scale / 2`` of the original everywhere (constant dimensions exactly),
  and every explicit code-space op (slice, gather, splice, concat) commutes
  with decoding;
* **Rank fidelity** — the asymmetric float-query x int8-table distance
  kernel agrees with exact distances against the decoded table to float
  tolerance, so blocking neighbour order is pinned, not approximated;
* **Store equivalence** — an int8-codec :class:`EncodingStore` produces the
  same candidate pairs as a raw store while storing ~8x fewer bytes, and a
  quantize -> patch -> prune roundtrip re-encodes exactly as many rows as
  the raw codec does (the delta machinery is codec-blind).

And four more pin the trained ``pq`` tier:

* **Deterministic training** — seeded k-means refits to identical
  codebooks, the f16 wire form round-trips params bit-exactly, and the
  exact-decode guard makes low-cardinality subspaces decode exactly;
* **ADC fidelity** — the lookup-table kernel equals exact distances
  against the decoded table (the approximation lives in the codebooks,
  never in the kernel);
* **Store equivalence under expansion** — a pq store's candidates *cover*
  the raw candidates (``rank_expansion`` makes the pq shortlist a
  superset, so recall — not symmetric difference — is the contract);
* **Quantize-once warm path** — a warm load serves byte-identical codes
  and re-resolves to the identical match stream without re-encoding.
"""

import json
import os
import pickle
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BlockingConfig, VAEConfig
from repro.core.representation import EntityRepresentationModel
from repro.data.generators.base import DomainSpec, SyntheticDomainGenerator, compose, pick
from repro.engine import (
    PersistentEncodingCache,
    ShardedEncodingStore,
    merge_scored_batches,
    resolve_delta,
)
from repro.engine.quant import (
    CODEC_ENV_VAR,
    CodecArray,
    CodecParams,
    PQParams,
    ProductQuantizer,
    ScalarQuantizer,
    asymmetric_sq_distances,
    available_codecs,
    get_codec,
    params_from_json,
    resolve_codec_name,
    table_sq_norms_of,
    usable_codecs,
)
from repro.eval.timing import EngineCounters


def _random_floats(shape, seed=0, scale=3.0):
    rng = np.random.default_rng(seed)
    return rng.normal(scale=scale, size=shape)


class TestCodecParams:
    def test_json_roundtrip(self):
        params = ScalarQuantizer().fit(_random_floats((10, 2, 4)))
        clone = CodecParams.from_json(params.to_json())
        assert clone == params
        assert clone.scale.shape == (2, 4) and clone.offset.shape == (2, 4)

    def test_reshaped_preserves_values(self):
        params = ScalarQuantizer().fit(_random_floats((10, 8)))
        flat = params.reshaped((2, 4))
        assert flat.scale.shape == (2, 4)
        np.testing.assert_array_equal(flat.scale.ravel(), params.scale.ravel())

    def test_inequality(self):
        a = ScalarQuantizer().fit(_random_floats((10, 4), seed=1))
        b = ScalarQuantizer().fit(_random_floats((10, 4), seed=2))
        assert a != b and a == a


class TestScalarQuantizer:
    def test_reconstruction_error_bounded_by_half_step(self):
        values = _random_floats((64, 3, 5), seed=3)
        array = ScalarQuantizer().encode(values, None)
        error = np.abs(array.decode() - values)
        assert np.all(error <= array.params.scale / 2 + 1e-12)

    def test_codes_symmetric_range(self):
        array = ScalarQuantizer().encode(_random_floats((128, 6), seed=4), None)
        assert array.codes.dtype == np.int8
        assert array.codes.min() >= -127 and array.codes.max() <= 127

    def test_constant_dimension_decodes_exactly(self):
        values = _random_floats((32, 3), seed=5)
        values[:, 1] = 2.5  # zero-span dimension
        array = ScalarQuantizer().encode(values, None)
        np.testing.assert_array_equal(array.decode()[:, 1], values[:, 1])

    def test_encode_with_adopted_params_is_fit_free(self):
        base = _random_floats((40, 4), seed=6)
        params = ScalarQuantizer().fit(base)
        tail = ScalarQuantizer().encode(_random_floats((8, 4), seed=7), params)
        assert tail.params is params  # adopted, not re-fitted

    def test_extremes_clip_instead_of_wrapping(self):
        params = ScalarQuantizer().fit(np.array([[0.0], [1.0]]))
        wild = ScalarQuantizer().encode(np.array([[100.0], [-100.0]]), params)
        assert wild.codes.max() == 127 and wild.codes.min() == -127


class TestCodecArray:
    def _array(self, n=24, trailing=(2, 3), seed=8):
        values = _random_floats((n,) + trailing, seed=seed)
        return values, ScalarQuantizer().encode(values, None)

    def test_ndarray_compatible_reads(self):
        values, array = self._array()
        assert array.shape == values.shape and len(array) == len(values)
        assert array.dtype == np.float64  # logical dtype: consumers see floats
        np.testing.assert_array_equal(np.asarray(array), array.decode())
        np.testing.assert_array_equal(array[np.array([3, 1, 3])], array.decode()[[3, 1, 3]])

    def test_nbytes_counts_codes_plus_params(self):
        _, array = self._array()
        params_bytes = array.params.scale.nbytes + array.params.offset.nbytes
        assert array.nbytes == array.codes.nbytes + params_bytes
        assert array.decode().nbytes == 8 * array.codes.nbytes

    def test_setitem_reencodes_rows(self):
        values, array = self._array()
        replacement = _random_floats((2, 3), seed=9)
        array[4] = replacement
        assert np.all(np.abs(array[4] - replacement) <= array.params.scale / 2 + 1e-12)

    def test_code_ops_commute_with_decode(self):
        _, array = self._array()
        rows = np.array([5, 0, 17, 5])
        np.testing.assert_array_equal(array.take_rows(rows).decode(), array.decode()[rows])
        np.testing.assert_array_equal(array.row_slice(4, 11).decode(), array.decode()[4:11])
        flat = array.reshape(len(array), -1)
        np.testing.assert_array_equal(flat.decode(), array.decode().reshape(len(array), -1))

    def test_concat_rows_floats_and_codes(self):
        _, array = self._array()
        tail_floats = _random_floats((4, 2, 3), seed=10)
        grown = array.concat_rows(tail_floats)
        assert len(grown) == len(array) + 4 and grown.params == array.params
        _, other = self._array(n=6)
        grown2 = array.concat_rows(CodecArray(other.codes, array.params))
        np.testing.assert_array_equal(grown2.codes[len(array):], other.codes)

    def test_concat_classmethod(self):
        _, array = self._array()
        left, right = array.row_slice(0, 10), array.row_slice(10, len(array))
        np.testing.assert_array_equal(
            CodecArray.concat([left, right]).codes, array.codes
        )

    def test_on_decode_hook_counts_float_bytes(self):
        seen = []
        values = _random_floats((16, 4), seed=11)
        array = ScalarQuantizer().encode(values, None, on_decode=seen.append)
        _ = array[np.array([0, 1, 2])]
        assert seen == [3 * 4 * 8]  # 3 rows x 4 dims x float64

    def test_pickle_drops_decode_hook(self):
        values = _random_floats((8, 4), seed=12)
        array = ScalarQuantizer().encode(values, None, on_decode=lambda _: None)
        clone = pickle.loads(pickle.dumps(array))
        assert clone.on_decode is None
        np.testing.assert_array_equal(clone.codes, array.codes)
        np.testing.assert_array_equal(clone.decode(), array.decode())


class TestRegistry:
    def test_available_codecs(self):
        names = available_codecs()
        assert "raw" in names and "int8" in names

    def test_get_codec_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown codec"):
            get_codec("float16")

    def test_resolve_explicit_and_default(self):
        assert resolve_codec_name(None) in available_codecs()
        assert resolve_codec_name("int8") == "int8"
        with pytest.raises(ValueError):
            resolve_codec_name("zstd")

    def test_env_knob_selects_and_forgives(self, monkeypatch):
        monkeypatch.setenv(CODEC_ENV_VAR, "int8")
        assert resolve_codec_name(None) == "int8"
        monkeypatch.setenv(CODEC_ENV_VAR, "not-a-codec")
        assert resolve_codec_name(None) == "raw"  # env is forgiving, flags are not
        monkeypatch.delenv(CODEC_ENV_VAR)
        assert resolve_codec_name(None) == "raw"

    def test_raw_codec_is_identity(self):
        codec = get_codec("raw")
        values = _random_floats((4, 2))
        assert codec.is_identity and codec.encode(values, None) is values

    def test_pq_codec_is_usable(self):
        assert usable_codecs() == ["int8", "pq", "raw"]
        pq = get_codec("pq")
        assert pq.usable and pq.name == "pq"
        assert resolve_codec_name("pq") == "pq"

    def test_env_typo_warns_once_then_stays_quiet(self, monkeypatch):
        monkeypatch.setenv(CODEC_ENV_VAR, "pq8-typo")
        with pytest.warns(RuntimeWarning, match="pq8-typo"):
            assert resolve_codec_name(None) == "raw"
        with warnings.catch_warnings():
            # One-shot: the same ignored value never warns again.
            warnings.simplefilter("error")
            assert resolve_codec_name(None) == "raw"


def _clustered_floats(n=400, d=8, centers=12, noise=0.01, seed=23, scale=3.0):
    """Clusterable data: what PQ codebooks are actually good at."""
    rng = np.random.default_rng(seed)
    mus = rng.normal(scale=scale, size=(centers, d))
    return mus[rng.integers(0, centers, size=n)] + rng.normal(scale=noise, size=(n, d))


class TestProductQuantizer:
    def test_codes_are_uint8_and_reconstruction_tracks_clusters(self):
        values = _clustered_floats()
        array = ProductQuantizer().encode(values, None)
        assert array.codes.dtype == np.uint8
        assert array.codes.shape == (len(values), array.params.m)
        # Error is bounded by cluster noise + f16 centroid rounding, both
        # orders of magnitude below the cluster scale.
        assert float(np.abs(array.decode() - values).mean()) < 0.05

    def test_exact_decode_guard_on_low_cardinality_tables(self):
        rng = np.random.default_rng(24)
        base = rng.normal(scale=2.0, size=(6, 8)).astype(np.float16).astype(np.float64)
        values = base[rng.integers(0, 6, size=50)]
        array = ProductQuantizer().encode(values, None)
        # Few distinct subvectors: the data is the codebook, decode is exact
        # (f16-representable inputs survive the f16 codebook rounding).
        np.testing.assert_array_equal(array.decode(), values)

    def test_refit_is_deterministic(self):
        values = _clustered_floats(seed=25)
        quantizer = ProductQuantizer()
        first, second = quantizer.fit(values), quantizer.fit(values)
        assert first == second
        np.testing.assert_array_equal(
            first.encode_values(values), second.encode_values(values)
        )

    def test_params_json_roundtrip_is_bit_exact(self):
        params = ProductQuantizer().fit(_clustered_floats(seed=26))
        payload = json.loads(json.dumps(params.to_json()))
        clone = PQParams.from_json(payload)
        assert clone == params  # f16 wire: bit-exact, not approximate
        assert params_from_json("pq", payload) == params
        values = _clustered_floats(n=40, seed=27)
        np.testing.assert_array_equal(
            clone.encode_values(values), params.encode_values(values)
        )

    def test_distortion_refinement_splits_hard_subspaces_only(self):
        rng = np.random.default_rng(28)
        # Unclusterable white noise: one 4-wide subspace cannot hit the
        # distortion target, so the fit splits it and spends more bytes.
        hard = rng.normal(size=(2000, 4))
        assert ProductQuantizer(m=1).fit(hard).m >= 2
        # Tightly clustered data of the same shape fits in one subspace.
        easy = _clustered_floats(n=2000, d=4, centers=100, noise=0.005, seed=29)
        assert ProductQuantizer(m=1).fit(easy).m == 1

    def test_code_shape_decoupled_from_logical_shape(self):
        values = _clustered_floats(n=50, d=8, seed=30).reshape(50, 2, 4)
        array = ProductQuantizer().encode(values, None)
        assert array.shape == (50, 2, 4)
        flat = array.reshape(50, -1)
        assert flat.shape == (50, 8)
        assert flat.codes is array.codes  # a view change, codes never move
        np.testing.assert_array_equal(flat.decode(), array.decode().reshape(50, 8))

    def test_code_ops_commute_with_decode(self):
        array = ProductQuantizer().encode(_clustered_floats(n=40, seed=31), None)
        rows = np.array([7, 0, 33, 7])
        np.testing.assert_array_equal(array.take_rows(rows).decode(), array.decode()[rows])
        np.testing.assert_array_equal(array.row_slice(5, 21).decode(), array.decode()[5:21])
        grown = array.concat_rows(_clustered_floats(n=8, seed=32))
        assert len(grown) == 48 and grown.params is array.params

    def test_m_override_via_constructor_and_env(self, monkeypatch):
        values = _clustered_floats(n=100, d=8, seed=33)
        assert ProductQuantizer(m=2).fit(values).m == 2
        monkeypatch.setenv("REPRO_PQ_M", "4")
        assert ProductQuantizer().fit(values).m == 4

    def test_query_policy_attributes(self):
        # The LSH index reads these off the table params: int8 ranks
        # accurately enough to keep the exact cut, PQ asks for an expanded
        # ADC shortlist plus one extra bucket probe per table.
        assert (CodecParams.rank_expansion, CodecParams.extra_probes) == (1, 0)
        assert (PQParams.rank_expansion, PQParams.extra_probes) == (2, 1)


class TestAsymmetricDistance:
    def test_matches_exact_distances_on_decoded_table(self):
        table_values = _random_floats((50, 12), seed=13)
        table = ScalarQuantizer().encode(table_values, None)
        queries = _random_floats((7, 12), seed=14)
        approx = asymmetric_sq_distances(queries, table)
        exact = ((queries[:, None, :] - table.decode()[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(approx, exact, rtol=1e-4, atol=1e-4)

    def test_single_query_squeezes(self):
        table = ScalarQuantizer().encode(_random_floats((20, 6), seed=15), None)
        distances = asymmetric_sq_distances(_random_floats((6,), seed=16), table)
        assert distances.shape == (20,)

    def test_precomputed_norms_change_nothing(self):
        table = ScalarQuantizer().encode(_random_floats((30, 8), seed=17), None)
        query = _random_floats((8,), seed=18)
        np.testing.assert_allclose(
            asymmetric_sq_distances(query, table),
            asymmetric_sq_distances(query, table, table_sq_norms=table_sq_norms_of(table)),
            rtol=1e-6, atol=1e-6,
        )

    def test_norms_of_gather_equal_gather_of_norms(self):
        table = ScalarQuantizer().encode(_random_floats((40, 5), seed=19), None)
        rows = np.array([7, 3, 22, 3])
        np.testing.assert_allclose(
            table_sq_norms_of(table.take_rows(rows)),
            table_sq_norms_of(table)[rows],
            rtol=1e-6, atol=1e-6,
        )

    def test_pq_adc_matches_exact_distances_on_decoded_table(self):
        """The ADC LUT kernel is exact against the *decoded* table — all
        approximation lives in the codebooks, none in the kernel."""
        rng = np.random.default_rng(34)
        table = ProductQuantizer().encode(rng.normal(scale=2.0, size=(80, 12)), None)
        queries = rng.normal(scale=2.0, size=(5, 12))
        approx = asymmetric_sq_distances(queries, table)
        exact = ((queries[:, None, :] - table.decode()[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(approx, exact, rtol=1e-4, atol=1e-3)

    def test_pq_single_query_squeezes_and_norm_cache_is_inert(self):
        rng = np.random.default_rng(35)
        table = ProductQuantizer().encode(rng.normal(size=(30, 8)), None)
        query = rng.normal(size=8)
        distances = asymmetric_sq_distances(query, table)
        assert distances.shape == (30,)
        # PQ LUTs carry the whole distance; the codec-agnostic norm cache
        # contributes zeros and changes nothing.
        np.testing.assert_array_equal(table_sq_norms_of(table), np.zeros(30))
        np.testing.assert_allclose(
            distances,
            asymmetric_sq_distances(query, table, table_sq_norms=table_sq_norms_of(table)),
            rtol=1e-6, atol=1e-6,
        )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), rows=st.integers(4, 60), dim=st.integers(2, 24))
    def test_rank_order_pinned_to_exact_within_epsilon(self, seed, rows, dim):
        """The hypothesis contract: neighbour order under the asymmetric
        kernel equals the order of exact distances against the decoded
        table, up to exact ties (distance gap below float tolerance)."""
        rng = np.random.default_rng(seed)
        table = ScalarQuantizer().encode(rng.normal(size=(rows, dim)), None)
        query = rng.normal(size=dim)
        approx = asymmetric_sq_distances(query, table)
        exact = ((query[None, :] - table.decode()) ** 2).sum(axis=1)
        np.testing.assert_allclose(approx, exact, rtol=1e-4, atol=1e-6)
        approx_order, exact_order = np.argsort(approx), np.argsort(exact)
        disagree = approx_order != exact_order
        if np.any(disagree):
            # Any disagreement must be a tie: the exact distances of the
            # swapped entries are equal to float tolerance.
            np.testing.assert_allclose(
                exact[approx_order[disagree]], exact[exact_order[disagree]],
                rtol=1e-7, atol=1e-9,
            )


def _quant_entity(rng):
    pool_a = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
              "iota", "kappa", "lambda", "sigma", "omega", "nu"]
    pool_b = ["london", "paris", "berlin", "madrid", "rome", "vienna"]
    return (compose(rng, pool_a, 2, 3), pick(rng, pool_b), f"{rng.uniform(5, 200):.2f}")


def _fresh_quant_domain():
    spec = DomainSpec(
        name="quanttest",
        attributes=("name", "city", "price"),
        entity_factory=_quant_entity,
        clean=True,
        numeric_attributes=(False, False, True),
        left_size=40,
        right_size=36,
        overlap_fraction=0.6,
        train_size=60,
        valid_size=12,
        test_size=24,
        positive_fraction=0.3,
    )
    return SyntheticDomainGenerator(spec, seed=91).generate()


class _DistanceMatcher:
    def predict_proba(self, left_irs: np.ndarray, right_irs: np.ndarray) -> np.ndarray:
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


@pytest.fixture(scope="module")
def quant_representation():
    domain = _fresh_quant_domain()
    config = VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=3, seed=5)
    return EntityRepresentationModel(config, ir_method="lsa").fit(domain.task)


def _resolve(representation, domain, codec, cache=None, baseline=None, store=None):
    if store is None:
        store = ShardedEncodingStore(
            representation, domain.task, counters=EngineCounters(),
            shard_rows=16, persistent=cache, codec=codec,
        )
    executor = resolve_delta(
        store, _DistanceMatcher(), baseline=baseline,
        blocking=BlockingConfig(seed=19), k=4, batch_size=13,
    )
    scored = merge_scored_batches(executor.run())
    return store, executor.baseline_out, scored


class TestStoreEquivalence:
    def test_int8_store_matches_raw_candidates_and_compresses(self, quant_representation):
        """Candidate sets agree except at the k-th-neighbour boundary (where
        a sub-epsilon distance perturbation may swap the final slot), and the
        int8 store is at least 4x smaller resident and stored."""
        domain = _fresh_quant_domain()
        raw_store, _, raw_scored = _resolve(quant_representation, domain, "raw")
        int8_store, _, int8_scored = _resolve(quant_representation, domain, "int8")
        raw_pairs, int8_pairs = set(raw_scored.pairs), set(int8_scored.pairs)
        jaccard = len(raw_pairs & int8_pairs) / len(raw_pairs | int8_pairs)
        assert jaccard >= 0.95, f"blocking recall vs exact collapsed: {jaccard:.3f}"
        # int8 resident bytes are ~8x smaller than the raw float store.
        assert raw_store.resident_bytes() >= 4 * int8_store.resident_bytes()
        assert raw_store.counters.bytes_stored >= 4 * int8_store.counters.bytes_stored
        assert int8_store.counters.bytes_decoded > 0
        assert raw_store.counters.bytes_decoded == 0

    def test_match_probabilities_within_quantization_epsilon(self, quant_representation):
        """Matcher scoring runs on rehydrated floats, so shared pairs score
        within the quantization epsilon of the exact run — the match set can
        only differ where a probability sits within epsilon of a threshold."""
        domain = _fresh_quant_domain()
        _, _, raw_scored = _resolve(quant_representation, domain, "raw")
        _, _, int8_scored = _resolve(quant_representation, domain, "int8")
        raw_by_pair = dict(zip(raw_scored.pairs, raw_scored.probabilities))
        shared = [p for p in int8_scored.pairs if p in raw_by_pair]
        assert len(shared) >= 0.95 * len(raw_by_pair)
        for pair, probability in zip(int8_scored.pairs, int8_scored.probabilities):
            if pair in raw_by_pair:
                assert abs(probability - raw_by_pair[pair]) < 0.05

    def test_pq_store_covers_raw_candidates_and_compresses(self, quant_representation):
        """PQ blocking ranks an *expanded* ADC shortlist (rank_expansion),
        so the contract is coverage: the raw candidate set survives inside
        the pq set, and shared pairs score within decode epsilon."""
        domain = _fresh_quant_domain()
        raw_store, _, raw_scored = _resolve(quant_representation, domain, "raw")
        pq_store, _, pq_scored = _resolve(quant_representation, domain, "pq")
        raw_pairs, pq_pairs = set(raw_scored.pairs), set(pq_scored.pairs)
        recall = len(raw_pairs & pq_pairs) / len(raw_pairs)
        assert recall >= 0.95, f"pq shortlist lost raw candidates: {recall:.3f}"
        assert pq_store.resident_bytes() < raw_store.resident_bytes()
        assert pq_store.counters.bytes_stored < raw_store.counters.bytes_stored
        assert pq_store.counters.bytes_decoded > 0
        raw_by_pair = dict(zip(raw_scored.pairs, raw_scored.probabilities))
        for pair, probability in zip(pq_scored.pairs, pq_scored.probabilities):
            if pair in raw_by_pair:
                assert abs(probability - raw_by_pair[pair]) < 0.05

    def test_pq_cold_warm_byte_identical(self, quant_representation, tmp_path):
        """The quantize-once warm path: a fresh store serves the *same
        bytes* from disk — codes equal, params equal, no re-encode — and
        re-resolves to the identical match stream. (This is the fast
        ``-k pq`` equivalence pass CI runs on every push.)"""
        cache = PersistentEncodingCache(tmp_path / "pq", chunk_rows=8)
        domain = _fresh_quant_domain()
        cold_store, _, cold_scored = _resolve(
            quant_representation, domain, "pq", cache=cache
        )
        cold_mu = cold_store.table_encodings("right").mu
        warm_store = ShardedEncodingStore(
            quant_representation, domain.task, counters=EngineCounters(),
            shard_rows=16, persistent=cache, codec="pq",
        )
        warm_mu = warm_store.table_encodings("right").mu
        assert warm_store.counters.disk_hits >= 1
        assert warm_store.counters.tables_encoded == 0
        assert np.array_equal(warm_mu.codes, cold_mu.codes)
        assert warm_mu.params == cold_mu.params
        _, _, warm_scored = _resolve(
            quant_representation, domain, "pq", cache=cache, store=warm_store
        )
        assert warm_store.counters.tables_encoded == 0
        assert list(warm_scored.pairs) == list(cold_scored.pairs)
        np.testing.assert_array_equal(
            np.asarray(warm_scored.probabilities), np.asarray(cold_scored.probabilities)
        )


class TestQuantizePatchPruneRoundtrip:
    def _mutate(self, domain):
        from repro.data.generators import append_rows, delete_rows, mutate_rows

        mutate_rows(domain, side="right", rows=3)
        delete_rows(domain, side="right", rows=2)
        append_rows(domain, side="right", rows=5)

    def _roundtrip(self, representation, tmp_path, codec):
        cache = PersistentEncodingCache(tmp_path / codec, chunk_rows=8)
        domain = _fresh_quant_domain()
        store, baseline, _ = _resolve(representation, domain, codec, cache=cache)
        self._mutate(domain)
        store, _, scored = _resolve(
            representation, domain, codec, cache=cache, baseline=baseline, store=store
        )
        return cache, store, scored

    def test_reencode_parity_with_raw_and_prune_keeps_serving(
        self, quant_representation, tmp_path
    ):
        raw_cache, raw_store, raw_scored = self._roundtrip(quant_representation, tmp_path, "raw")
        int8_cache, int8_store, int8_scored = self._roundtrip(quant_representation, tmp_path, "int8")
        # The delta machinery is codec-blind: identical mutations re-encode
        # identical row counts and produce the identical candidate set.
        assert int8_store.counters.rows_reencoded == raw_store.counters.rows_reencoded > 0
        assert int8_store.counters.rows_tombstoned == raw_store.counters.rows_tombstoned > 0
        raw_pairs, int8_pairs = set(raw_scored.pairs), set(int8_scored.pairs)
        jaccard = len(raw_pairs & int8_pairs) / len(raw_pairs | int8_pairs)
        assert jaccard >= 0.95  # boundary-of-k swaps only

        # Prune sweeps superseded generations; the survivor still serves the
        # quantized entry and a fresh store warm-loads it without encoding.
        removed = int8_cache.prune()
        assert set(removed["bytes_by_codec"]) <= {"int8"}
        warm = ShardedEncodingStore(
            quant_representation, int8_store.task, counters=EngineCounters(),
            shard_rows=16, persistent=int8_cache, codec="int8",
        )
        warm.table_encodings("right")
        assert warm.counters.disk_hits >= 1
        assert warm.counters.tables_encoded == 0

    def test_pq_reencode_parity_and_prune_keeps_serving(
        self, quant_representation, tmp_path
    ):
        """Same contract for the pq tier: the delta machinery re-encodes
        exactly the dirty rows (in code space, against the fixed
        codebooks), raw candidates stay covered, and a pruned cache still
        warm-serves the quantized entry."""
        raw_cache, raw_store, raw_scored = self._roundtrip(quant_representation, tmp_path, "raw")
        pq_cache, pq_store, pq_scored = self._roundtrip(quant_representation, tmp_path, "pq")
        assert pq_store.counters.rows_reencoded == raw_store.counters.rows_reencoded > 0
        assert pq_store.counters.rows_tombstoned == raw_store.counters.rows_tombstoned > 0
        raw_pairs, pq_pairs = set(raw_scored.pairs), set(pq_scored.pairs)
        # Appended rows encode against codebooks fitted before they
        # existed, so their decode error is the codec's worst case — the
        # expanded shortlist is what keeps raw candidates covered anyway.
        assert len(raw_pairs & pq_pairs) / len(raw_pairs) >= 0.9

        removed = pq_cache.prune()
        assert set(removed["bytes_by_codec"]) <= {"pq"}
        warm = ShardedEncodingStore(
            quant_representation, pq_store.task, counters=EngineCounters(),
            shard_rows=16, persistent=pq_cache, codec="pq",
        )
        warm.table_encodings("right")
        assert warm.counters.disk_hits >= 1
        assert warm.counters.tables_encoded == 0
