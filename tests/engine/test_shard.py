"""ShardedEncodingStore mechanics and parallel resolve behaviour."""

import numpy as np
import pytest

from repro.config import MatcherConfig, VAERConfig, VAEConfig
from repro.core import VAER
from repro.data.pairs import RecordPair
from repro.engine import (
    ScoredPairs,
    ShardedEncodingStore,
    merge_scored_batches,
    resolve_sharded,
    resolve_stream,
)
from repro.eval.timing import EngineCounters, ShardTimings
from repro.exceptions import StaleEncodingError


@pytest.fixture(scope="module")
def sharded_pipeline(tiny_domain):
    config = VAERConfig(
        vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=3, seed=3),
        matcher=MatcherConfig(epochs=10, mlp_hidden=(24, 12), seed=5),
    )
    model = VAER(config, shard_rows=16).fit_representation(tiny_domain.task)
    model.fit_matcher(tiny_domain.splits.train, tiny_domain.splits.validation)
    return model


@pytest.fixture()
def store(tiny_domain, tiny_representation):
    return ShardedEncodingStore(
        tiny_representation, tiny_domain.task, counters=EngineCounters(), shard_rows=16
    )


class TestShardViews:
    def test_bounds_cover_table_in_order(self, store, tiny_domain):
        bounds = store.shard_bounds("left")
        assert bounds[0].start == 0
        assert bounds[-1].stop == len(tiny_domain.task.left)
        for previous, current in zip(bounds, bounds[1:]):
            assert previous.stop == current.start
        assert all(b.rows <= store.shard_rows for b in bounds)
        assert [b.index for b in bounds] == list(range(len(bounds)))

    def test_pipeline_store_is_sharded(self, sharded_pipeline):
        assert isinstance(sharded_pipeline.store, ShardedEncodingStore)
        assert sharded_pipeline.store.shard_rows == 16

    def test_invalid_shard_rows_rejected(self, tiny_domain, tiny_representation):
        with pytest.raises(ValueError):
            ShardedEncodingStore(tiny_representation, tiny_domain.task, shard_rows=0)

    def test_out_of_range_shard_rejected(self, store):
        with pytest.raises(IndexError):
            store.table_shard("left", store.num_shards("left"))

    def test_shard_local_row_index(self, store, tiny_domain):
        """Each shard addresses its own rows 0..len-1 by the original keys."""
        full = store.table_encodings("left")
        shard = store.table_shard("left", 1)
        for local_row, key in enumerate(shard.keys):
            assert shard.row_index[key] == local_row
            np.testing.assert_array_equal(shard.mu[local_row], full.mu[full.row_index[key]])


class TestShardedEnumeration:
    def test_sharded_batches_equal_streamed_batches(self, store, tiny_domain):
        """Per-shard enumeration yields the identical (index, pairs) stream."""
        from repro.engine import iter_candidate_batches, iter_sharded_candidate_batches

        streamed = list(iter_candidate_batches(store, k=5, batch_size=13))
        sharded = list(iter_sharded_candidate_batches(store, k=5, batch_size=13))
        assert [i for i, _ in sharded] == [i for i, _ in streamed]
        assert [[p.key() for p in pairs] for _, pairs in sharded] == [
            [p.key() for p in pairs] for _, pairs in streamed
        ]
        # Shard boundaries genuinely partition the enumeration here.
        assert store.num_shards("left") > 1


class TestResolveSharded:
    def test_rejects_bad_arguments_eagerly(self, sharded_pipeline):
        store, matcher = sharded_pipeline.store, sharded_pipeline.matcher
        with pytest.raises(ValueError):
            resolve_sharded(store, matcher, batch_size=0, workers=2)
        with pytest.raises(ValueError):
            resolve_sharded(store, matcher, batch_size=8, workers=0)

    def test_single_worker_equals_stream(self, sharded_pipeline):
        streamed = merge_scored_batches(
            resolve_stream(sharded_pipeline.store, sharded_pipeline.matcher, k=5, batch_size=13)
        )
        timings = ShardTimings()
        serial = merge_scored_batches(
            resolve_sharded(
                sharded_pipeline.store, sharded_pipeline.matcher,
                k=5, batch_size=13, workers=1, shard_timings=timings,
            )
        )
        assert [p.key() for p in serial.pairs] == [p.key() for p in streamed.pairs]
        np.testing.assert_array_equal(serial.probabilities, streamed.probabilities)
        assert len(timings) > 0 and timings.total_pairs() == len(serial)

    def test_two_workers_byte_identical_to_stream(self, sharded_pipeline):
        streamed = merge_scored_batches(
            resolve_stream(sharded_pipeline.store, sharded_pipeline.matcher, k=5, batch_size=13)
        )
        parallel = merge_scored_batches(
            resolve_sharded(
                sharded_pipeline.store, sharded_pipeline.matcher, k=5, batch_size=13, workers=2
            )
        )
        assert [p.key() for p in parallel.pairs] == [p.key() for p in streamed.pairs]
        np.testing.assert_array_equal(parallel.probabilities, streamed.probabilities)
        assert {p.key() for p in parallel.matches()} == {p.key() for p in streamed.matches()}

    def test_interleaved_parallel_streams_do_not_cross_wires(self, sharded_pipeline):
        """Two concurrent sharded resolves over one process stay independent."""
        first = sharded_pipeline.resolve_stream(k=5, batch_size=13, workers=2)
        second = sharded_pipeline.resolve_stream(k=5, batch_size=13, workers=2)
        batches = []
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.probabilities, b.probabilities)
            batches.append(a)
        reference = merge_scored_batches(
            resolve_stream(sharded_pipeline.store, sharded_pipeline.matcher, k=5, batch_size=13)
        )
        merged = merge_scored_batches(batches)
        np.testing.assert_array_equal(
            merged.probabilities, reference.probabilities[: len(merged)]
        )

    def test_mid_stream_invalidation_raises(self, tiny_domain):
        config = VAERConfig(
            vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2, seed=3),
            matcher=MatcherConfig(epochs=5, mlp_hidden=(24, 12), seed=5),
        )
        model = VAER(config).fit_representation(tiny_domain.task)
        model.fit_matcher(tiny_domain.splits.train)
        stream = model.resolve_stream(k=5, batch_size=13, workers=2)
        next(iter(stream))
        model.representation.fit(tiny_domain.task, epochs=1)
        with pytest.raises(StaleEncodingError):
            for _ in stream:
                pass


class TestMergeScoredBatches:
    def test_out_of_order_batches_merge_by_index(self):
        def batch(index, ids, probs):
            from repro.engine import ResolutionBatch

            return ResolutionBatch(
                pairs=[RecordPair(f"l{i}", f"r{i}") for i in ids],
                probabilities=np.asarray(probs),
                threshold=0.5,
                batch_index=index,
            )

        merged = merge_scored_batches(
            [batch(2, [4, 5], [0.9, 0.1]), batch(0, [0, 1], [0.2, 0.8]), batch(1, [2, 3], [0.6, 0.4])]
        )
        assert [p.left_id for p in merged.pairs] == ["l0", "l1", "l2", "l3", "l4", "l5"]
        np.testing.assert_allclose(merged.probabilities, [0.2, 0.8, 0.6, 0.4, 0.9, 0.1])

    def test_empty_merge(self):
        merged = merge_scored_batches([])
        assert len(merged) == 0
        assert merged.probabilities.shape == (0,)
        assert merged.threshold == 0.5

    def test_mismatched_thresholds_rejected(self):
        a = ScoredPairs(pairs=[RecordPair("a", "b")], probabilities=np.array([0.4]), threshold=0.5)
        b = ScoredPairs(pairs=[RecordPair("c", "d")], probabilities=np.array([0.6]), threshold=0.7)
        with pytest.raises(ValueError):
            merge_scored_batches([a, b])
