"""Property-based equivalence: loop, vectorized and sharded scoring agree.

The engine's one non-negotiable invariant is that every scoring path —
the legacy per-pair Python loop, the store's vectorized gather, and gathers
through row-range shard views — computes the *same numbers*.  These tests
pin that equivalence to 1e-9 over randomized tables and pair sets, including
the degenerate shapes (empty pair sets, single-row tables) where indexing
bugs hide.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import VAEConfig
from repro.core.active.sampler import _pair_latent_distances_loop, pair_latent_distances
from repro.core.representation import EntityRepresentationModel
from repro.data.pairs import RecordPair
from repro.data.schema import ERTask, Record, Table
from repro.engine import ShardedEncodingStore
from repro.eval.timing import EngineCounters

ATOL = 1e-9


def _random_task(rng: np.random.Generator, left_rows: int, right_rows: int, name: str) -> ERTask:
    """A small random 2-attribute task with overlapping token vocabulary."""
    words = ["ada", "byte", "code", "data", "eval", "flux", "graph", "heap",
             "index", "join", "key", "latch", "merge", "node"]

    def record(side: str, i: int) -> Record:
        tokens = " ".join(rng.choice(words, size=3))
        number = f"{rng.uniform(1, 99):.1f}"
        return Record(record_id=f"{side}{i}", values=(tokens, number))

    left = Table(name=f"{name}_left", attributes=("text", "value"),
                 records=[record("l", i) for i in range(left_rows)])
    right = Table(name=f"{name}_right", attributes=("text", "value"),
                  records=[record("r", i) for i in range(right_rows)])
    return ERTask(name=name, left=left, right=right)


def _fit_store(task: ERTask, shard_rows: int) -> ShardedEncodingStore:
    config = VAEConfig(ir_dim=8, hidden_dim=12, latent_dim=4, epochs=1, seed=7)
    representation = EntityRepresentationModel(config, ir_method="lsa").fit(task)
    return ShardedEncodingStore(
        representation, task, counters=EngineCounters(), shard_rows=shard_rows
    )


def _sharded_latent_distances(store: ShardedEncodingStore, pairs) -> np.ndarray:
    """Score pairs by gathering mu rows *through the shard views*.

    Each referenced row is fetched from the shard that owns it (via the
    shard's local row index), proving the row-range decomposition loses no
    information relative to the contiguous cached arrays.
    """
    if not pairs:
        return np.zeros(0)

    def gather_mu(side: str, record_ids) -> np.ndarray:
        full = store.table_encodings(side)
        bounds = store.shard_bounds(side)
        shards = [store.table_shard(side, b.index) for b in bounds]
        rows = []
        for rid in record_ids:
            global_row = full.row_index[rid]
            shard = shards[global_row // store.shard_rows]
            rows.append(shard.mu[shard.row_index[rid]])
        return np.stack(rows)

    mu_left = gather_mu("left", [p.left_id for p in pairs])
    mu_right = gather_mu("right", [p.right_id for p in pairs])
    return np.sqrt(((mu_left - mu_right) ** 2).sum(axis=-1)).mean(axis=-1)


# ----------------------------------------------------------------------
# Hypothesis: randomized pair sets over a fixed fitted store
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fixed_store(tiny_domain, tiny_representation):
    return ShardedEncodingStore(
        tiny_representation, tiny_domain.task, counters=EngineCounters(), shard_rows=7
    )


class TestRandomizedPairSets:
    @given(indices=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 35)), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_three_paths_agree_on_random_pairs(self, fixed_store, tiny_domain, tiny_representation, indices):
        left_ids = tiny_domain.task.left.record_ids()
        right_ids = tiny_domain.task.right.record_ids()
        pairs = [RecordPair(left_ids[i], right_ids[j]) for i, j in indices]

        vectorized = fixed_store.pair_latent_distances(pairs)
        loop = _pair_latent_distances_loop(tiny_domain.task, tiny_representation, pairs)
        sharded = _sharded_latent_distances(fixed_store, pairs)

        assert vectorized.shape == loop.shape == sharded.shape == (len(pairs),)
        np.testing.assert_allclose(vectorized, loop, atol=ATOL)
        np.testing.assert_allclose(sharded, loop, atol=ATOL)

    @given(indices=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 35)), max_size=40))
    @settings(max_examples=20, deadline=None)
    def test_wasserstein_matches_gathered_latents(self, fixed_store, tiny_domain, indices):
        """pair_tuple_wasserstein equals recomputing from the gathered latents."""
        left_ids = tiny_domain.task.left.record_ids()
        right_ids = tiny_domain.task.right.record_ids()
        pairs = [RecordPair(left_ids[i], right_ids[j]) for i, j in indices]
        scores = fixed_store.pair_tuple_wasserstein(pairs)
        mu_l, sigma_l, mu_r, sigma_r = fixed_store.gather_pair_latents(pairs)
        expected = ((mu_l - mu_r) ** 2 + (sigma_l - sigma_r) ** 2).sum(axis=-1).mean(axis=-1)
        np.testing.assert_allclose(scores, expected, atol=ATOL)


# ----------------------------------------------------------------------
# Randomized tables (parametrized seeds), degenerate shapes included
# ----------------------------------------------------------------------
class TestRandomizedTables:
    @pytest.mark.parametrize("seed,left_rows,right_rows,shard_rows", [
        (0, 6, 9, 4),
        (1, 12, 5, 3),
        (2, 9, 12, 100),  # one shard spanning everything
    ])
    def test_random_tables_agree(self, seed, left_rows, right_rows, shard_rows):
        rng = np.random.default_rng(seed)
        task = _random_task(rng, left_rows, right_rows, f"rand{seed}")
        store = _fit_store(task, shard_rows)
        pairs = [
            RecordPair(f"l{rng.integers(left_rows)}", f"r{rng.integers(right_rows)}")
            for _ in range(25)
        ]
        vectorized = pair_latent_distances(task, store.representation, pairs, store=store)
        loop = _pair_latent_distances_loop(task, store.representation, pairs)
        sharded = _sharded_latent_distances(store, pairs)
        np.testing.assert_allclose(vectorized, loop, atol=ATOL)
        np.testing.assert_allclose(sharded, loop, atol=ATOL)

    def test_single_row_tables(self):
        rng = np.random.default_rng(5)
        task = _random_task(rng, 1, 1, "single")
        store = _fit_store(task, shard_rows=4)
        pairs = [RecordPair("l0", "r0")] * 3  # repeated references to the only row
        vectorized = store.pair_latent_distances(pairs)
        loop = _pair_latent_distances_loop(task, store.representation, pairs)
        sharded = _sharded_latent_distances(store, pairs)
        assert store.num_shards("left") == store.num_shards("right") == 1
        np.testing.assert_allclose(vectorized, loop, atol=ATOL)
        np.testing.assert_allclose(sharded, loop, atol=ATOL)

    def test_empty_pair_set(self):
        rng = np.random.default_rng(6)
        task = _random_task(rng, 3, 3, "emptypairs")
        store = _fit_store(task, shard_rows=2)
        assert store.pair_latent_distances([]).shape == (0,)
        assert _pair_latent_distances_loop(task, store.representation, []).shape == (0,)
        assert _sharded_latent_distances(store, []).shape == (0,)
        left, right, labels = store.pair_ir_arrays([])
        assert left.shape[0] == right.shape[0] == labels.shape[0] == 0

    def test_shard_views_reassemble_to_full_arrays(self):
        """Concatenating every shard view reproduces the cached arrays exactly."""
        rng = np.random.default_rng(8)
        task = _random_task(rng, 11, 7, "reassemble")
        store = _fit_store(task, shard_rows=3)
        for side in ("left", "right"):
            full = store.table_encodings(side)
            shards = list(store.iter_shards(side))
            assert sum(len(s) for s in shards) == len(full)
            np.testing.assert_array_equal(np.concatenate([s.irs for s in shards]), full.irs)
            np.testing.assert_array_equal(np.concatenate([s.mu for s in shards]), full.mu)
            np.testing.assert_array_equal(np.concatenate([s.sigma for s in shards]), full.sigma)
            assert tuple(k for s in shards for k in s.keys) == full.keys
            # Views share memory with the cache — sharding copies nothing.
            assert all(np.shares_memory(s.mu, full.mu) for s in shards)
