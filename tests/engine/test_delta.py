"""Incremental (delta) resolution: equivalence, chunk reuse, baselines.

Three invariants pin the delta engine:

* **Equivalence** — for every registry domain, resolving base + appended
  rows through the delta plan yields the identical candidate stream and
  match set as a cold full resolve of the grown tables;
* **Chunk-fingerprint reuse** — appending ``k`` rows re-encodes only the
  tail (``rows_reencoded <= chunk-aligned k``; here exactly ``k``) and never
  the whole table (``tables_encoded`` stays 0, untouched sides included);
* **Baseline hygiene** — refitting the representation or swapping the
  matcher invalidates exactly the affected reuse (index, scores) while the
  output stays equivalent to a cold run.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BlockingConfig, VAEConfig
from repro.core.representation import EntityRepresentationModel
from repro.data.generators import DOMAIN_NAMES, append_rows, load_domain
from repro.data.generators.base import DomainSpec, SyntheticDomainGenerator, compose, pick
from repro.engine import (
    EncodingStore,
    PersistentEncodingCache,
    ResolutionPlanner,
    ShardedEncodingStore,
    merge_scored_batches,
    resolve_delta,
    resolve_stream,
)
from repro.eval.timing import EngineCounters, StageTimings


class _DistanceMatcher:
    """Deterministic matcher stand-in: probability decays with IR distance.

    Purely elementwise per pair (no matmul), so its output is byte-identical
    regardless of batch composition — which lets the equivalence tests
    compare probabilities exactly instead of to a tolerance.
    """

    def predict_proba(self, left_irs: np.ndarray, right_irs: np.ndarray) -> np.ndarray:
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


def _tiny_entity(rng):
    pool_a = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
              "iota", "kappa", "lambda", "sigma", "omega", "nu", "xi", "pi"]
    pool_b = ["london", "paris", "berlin", "madrid", "rome", "vienna", "oslo", "dublin"]
    return (compose(rng, pool_a, 2, 3), pick(rng, pool_b), f"{rng.uniform(5, 200):.2f}")


def _fresh_tiny_domain():
    """A private small domain (regenerated per call, safe to mutate)."""
    spec = DomainSpec(
        name="deltatest",
        attributes=("name", "city", "price"),
        entity_factory=_tiny_entity,
        clean=True,
        numeric_attributes=(False, False, True),
        left_size=40,
        right_size=36,
        overlap_fraction=0.6,
        train_size=60,
        valid_size=12,
        test_size=24,
        positive_fraction=0.3,
    )
    return SyntheticDomainGenerator(spec, seed=77).generate()


@pytest.fixture(scope="module")
def delta_representation():
    """One representation fitted on the (deterministic) delta-test domain.

    Every test regenerates its own identical domain to mutate, so one
    module-scoped fit serves them all.
    """
    domain = _fresh_tiny_domain()
    config = VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=3, seed=5)
    return EntityRepresentationModel(config, ir_method="lsa").fit(domain.task)


class TestRegistryEquivalence:
    @pytest.mark.parametrize("name", DOMAIN_NAMES)
    def test_delta_resolve_equals_cold_full_resolve(self, name):
        """The acceptance contract, on every registry domain: base + append
        through the delta plan == cold full resolve of the grown tables."""
        domain = load_domain(name, scale=0.2)
        representation = EntityRepresentationModel(
            VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=7), ir_method="lsa"
        ).fit(domain.task)
        matcher = _DistanceMatcher()
        blocking = BlockingConfig(seed=19)

        store = ShardedEncodingStore(
            representation, domain.task, counters=EngineCounters(), shard_rows=16
        )
        executor = resolve_delta(store, matcher, baseline=None, blocking=blocking, k=4, batch_size=13)
        base = merge_scored_batches(executor.run())
        baseline = executor.baseline_out
        assert baseline is not None and len(baseline.scores) == len(base)
        assert store.counters.tables_encoded == 2  # the cold encodes

        append_rows(domain, side="right", rows=9)
        append_rows(domain, side="left", rows=5)
        rescored_before = store.counters.pairs_rescored
        warm = resolve_delta(
            store, matcher, baseline=baseline, blocking=blocking, k=4, batch_size=13
        )
        delta = merge_scored_batches(warm.run())
        # Only the appended tails were pushed through the encoder.
        assert store.counters.tables_encoded == 2, "delta run must not re-encode tables"
        assert store.counters.rows_reencoded == 14
        rescored = store.counters.pairs_rescored - rescored_before
        assert 0 < rescored < len(delta), "some baseline scores must be reused"

        cold_store = ShardedEncodingStore(
            representation, domain.task, counters=EngineCounters(), shard_rows=16
        )
        cold = merge_scored_batches(
            resolve_stream(cold_store, matcher, blocking=blocking, k=4, batch_size=13)
        )
        assert [p.key() for p in delta.pairs] == [p.key() for p in cold.pairs]
        # Reused pairs are byte-identical; tail rows were encoded in a
        # different matmul batch shape, so rescored pairs agree to float
        # round-off (same tolerance the monolithic-vs-streamed tests use).
        np.testing.assert_allclose(delta.probabilities, cold.probabilities, atol=1e-9)
        assert {p.key() for p in delta.matches()} == {p.key() for p in cold.matches()}

    def test_rescored_pairs_all_involve_new_rows(self):
        """The score stage restricts matcher work to pairs touching new rows."""
        domain = _fresh_tiny_domain()
        representation = EntityRepresentationModel(
            VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=3), ir_method="lsa"
        ).fit(domain.task)
        matcher = _DistanceMatcher()
        store = EncodingStore(representation, domain.task, counters=EngineCounters())
        executor = resolve_delta(store, matcher, baseline=None, k=4, batch_size=13)
        base = merge_scored_batches(executor.run())
        baseline = executor.baseline_out
        old_left = {p.left_id for p in base.pairs} | {r.record_id for r in domain.task.left}
        old_right = {r.record_id for r in domain.task.right}

        appended = append_rows(domain, side="right", rows=7)
        new_right = {r.record_id for r in appended}
        rescored_before = store.counters.pairs_rescored
        warm = resolve_delta(store, matcher, baseline=baseline, k=4, batch_size=13)
        delta = merge_scored_batches(warm.run())
        # Every pair absent from the baseline involves an appended row; all
        # old-old pairs were served from the baseline scores.
        fresh = [p for p in delta.pairs if (p.left_id, p.right_id) not in baseline.scores]
        assert fresh, "growing the right table must surface new candidate pairs"
        assert all(p.right_id in new_right for p in fresh)
        assert store.counters.pairs_rescored - rescored_before == len(fresh)
        assert all(p.left_id in old_left and p.right_id in (old_right | new_right) for p in delta.pairs)


class TestChunkFingerprintReuse:
    @pytest.fixture(scope="module")
    def grown_state(self, delta_representation, tmp_path_factory):
        """A domain + warm chunked cache that hypothesis examples keep growing."""
        domain = _fresh_tiny_domain()
        cache = PersistentEncodingCache(
            tmp_path_factory.mktemp("delta-cache"), chunk_rows=16
        )
        cold = EncodingStore(
            delta_representation, domain.task, counters=EngineCounters(), persistent=cache
        )
        cold.table_encodings("left")
        cold.table_encodings("right")
        assert cold.counters.tables_encoded == 2
        return domain, cache

    @settings(max_examples=8, deadline=None)
    @given(k=st.integers(min_value=1, max_value=40))
    def test_appending_k_rows_reencodes_at_most_chunk_aligned_k(
        self, grown_state, delta_representation, k
    ):
        """Per-chunk fingerprints keep every pre-append chunk valid: a fresh
        store over the grown table re-encodes exactly the k appended rows
        (trivially <= the chunk-aligned bound) and zero whole tables."""
        domain, cache = grown_state
        base_rows = len(domain.task.right)
        append_rows(domain, side="right", rows=k)

        store = EncodingStore(
            delta_representation, domain.task, counters=EngineCounters(), persistent=cache
        )
        grown = store.table_encodings("right")
        store.table_encodings("left")  # untouched side: pure disk hit
        chunk_aligned = -(-k // cache.chunk_rows) * cache.chunk_rows
        assert store.counters.tables_encoded == 0
        assert store.counters.rows_reencoded == k <= chunk_aligned
        assert store.counters.disk_hits == 2
        assert len(grown) == base_rows + k

    def test_in_memory_append_refresh_without_disk_cache(self, delta_representation):
        """A live store notices its backing table grew and refreshes via the
        same append-only path — no persistent cache required."""
        domain = _fresh_tiny_domain()
        store = EncodingStore(delta_representation, domain.task, counters=EngineCounters())
        first = store.table_encodings("right")
        append_rows(domain, side="right", rows=6)
        second = store.table_encodings("right")
        assert store.counters.tables_encoded == 1  # only the cold encode
        assert store.counters.rows_reencoded == 6
        assert second.keys[: len(first)] == first.keys
        np.testing.assert_array_equal(second.mu[: len(first)], first.mu)
        np.testing.assert_array_equal(second.irs[: len(first)], first.irs)
        # The refreshed table is served from cache on the next access.
        hits_before = store.counters.cache_hits
        store.table_encodings("right")
        assert store.counters.cache_hits == hits_before + 1

    def test_fingerprint_memoization(self, delta_representation):
        domain = _fresh_tiny_domain()
        store = EncodingStore(delta_representation, domain.task, counters=EngineCounters())
        first = store.table_fingerprint("right")
        for _ in range(5):
            assert store.table_fingerprint("right") == first
        assert store.counters.fingerprints_computed == 1
        # Growth changes the identity: exactly one recompute.
        append_rows(domain, side="right", rows=3)
        assert store.table_fingerprint("right") != first
        assert store.counters.fingerprints_computed == 2


class TestBaselineHygiene:
    def _fit(self, domain, seed=3):
        return EntityRepresentationModel(
            VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=seed), ir_method="lsa"
        ).fit(domain.task)

    def test_refit_invalidates_baseline_but_stays_equivalent(self):
        domain = _fresh_tiny_domain()
        representation = self._fit(domain)
        matcher = _DistanceMatcher()
        store = EncodingStore(representation, domain.task, counters=EngineCounters())
        executor = resolve_delta(store, matcher, baseline=None, k=4, batch_size=13)
        list(executor.run())
        baseline = executor.baseline_out

        representation.fit(domain.task, epochs=1)  # bumps encoding_version
        warm = resolve_delta(store, matcher, baseline=baseline, k=4, batch_size=13)
        refreshed = merge_scored_batches(warm.run())
        assert warm.baseline_out.encoding_version == representation.encoding_version
        # Stale baseline contributed nothing: everything was rescored.
        assert store.counters.pairs_rescored >= len(refreshed)

        cold_store = EncodingStore(representation, domain.task, counters=EngineCounters())
        cold = merge_scored_batches(resolve_stream(cold_store, matcher, k=4, batch_size=13))
        assert [p.key() for p in refreshed.pairs] == [p.key() for p in cold.pairs]
        np.testing.assert_array_equal(refreshed.probabilities, cold.probabilities)

    def test_new_matcher_invalidates_scores_not_index(self, delta_representation):
        domain = _fresh_tiny_domain()
        store = EncodingStore(delta_representation, domain.task, counters=EngineCounters())
        executor = resolve_delta(store, _DistanceMatcher(), baseline=None, k=4, batch_size=13)
        base = merge_scored_batches(executor.run())
        baseline = executor.baseline_out

        rescored_before = store.counters.pairs_rescored
        other = _DistanceMatcher()  # different object: scores must not be reused
        warm = resolve_delta(store, other, baseline=baseline, k=4, batch_size=13)
        again = merge_scored_batches(warm.run())
        assert store.counters.pairs_rescored - rescored_before == len(again)
        assert [p.key() for p in again.pairs] == [p.key() for p in base.pairs]
        # The index, which depends only on the encodings, was reused as-is.
        assert warm.baseline_out.index is baseline.index


class TestPipelineBaselineLifecycle:
    def test_refitting_matcher_drops_the_captured_baseline(self):
        """Baseline scores belong to the matcher that produced them: a refit
        must clear the pipeline's baseline so a recycled object identity can
        never serve the old matcher's probabilities."""
        from repro.config import MatcherConfig, VAERConfig
        from repro.core import VAER

        domain = _fresh_tiny_domain()
        config = VAERConfig(
            vae=VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=3),
            matcher=MatcherConfig(epochs=5, mlp_hidden=(16, 8), seed=5),
        )
        model = VAER(config).fit_representation(domain.task)
        model.fit_matcher(domain.splits.train, domain.splits.validation)
        list(model.resolve_stream(k=4, batch_size=13, incremental=True))
        assert model._baseline is not None
        assert model._baseline.matcher is model.matcher
        model.fit_matcher(domain.splits.train, domain.splits.validation)
        assert model._baseline is None
        # And a refit representation clears it too.
        list(model.resolve_stream(k=4, batch_size=13, incremental=True))
        model.fit_representation(domain.task)
        assert model._baseline is None


class TestDeltaPlan:
    def test_delta_plan_stage_graph(self):
        domain = _fresh_tiny_domain()
        planner = ResolutionPlanner(domain.task, k=4, batch_size=13, shard_rows=16)
        base_right = len(domain.task.right) - 6
        plan = planner.plan_delta(
            base_left_rows=len(domain.task.left), base_right_rows=base_right, index_reusable=True
        )
        assert [stage.name for stage in plan.stages] == ["encode", "block", "score"]
        assert plan.workers == 1
        assert plan.delta.base_right_rows == base_right
        assert plan.delta.new_rows("right", plan.right_rows) == 6
        assert plan.delta.new_rows("left", plan.left_rows) == 0
        encode = plan.stage("encode")
        assert encode.units[0].rows == 0 and "cached" in encode.units[0].detail
        assert encode.units[1].rows == 6 and "append-only" in encode.units[1].detail
        block = plan.stage("block")
        assert block.units[0].name == "extend right" and block.units[0].rows == 6
        assert "new rows" in plan.stage("score").units[0].detail

    def test_delta_plan_without_baseline_is_cold(self):
        domain = _fresh_tiny_domain()
        plan = ResolutionPlanner(domain.task, k=4, batch_size=13, shard_rows=16).plan_delta()
        assert plan.stage("block").units[0].name == "build right"
        assert all(unit.rows > 0 for unit in plan.stage("encode").units)
        # Base rows are clamped into the table's range.
        clamped = ResolutionPlanner(domain.task, shard_rows=16).plan_delta(10_000, -5)
        assert clamped.delta.base_left_rows == len(domain.task.left)
        assert clamped.delta.base_right_rows == 0

    def test_delta_plan_describe_mentions_delta(self):
        domain = _fresh_tiny_domain()
        plan = ResolutionPlanner(domain.task, k=4, shard_rows=16).plan_delta(
            base_left_rows=len(domain.task.left), base_right_rows=30, index_reusable=True
        )
        text = plan.describe()
        assert "delta:" in text and "extend right" in text
        assert f"base {30}" in text

    def test_stage_timings_carry_delta_counters(self, delta_representation):
        domain = _fresh_tiny_domain()
        store = EncodingStore(delta_representation, domain.task, counters=EngineCounters())
        executor = resolve_delta(store, _DistanceMatcher(), baseline=None, k=4, batch_size=13)
        list(executor.run())
        append_rows(domain, side="right", rows=5)
        timings = StageTimings()
        warm = resolve_delta(
            store, _DistanceMatcher(), baseline=executor.baseline_out,
            k=4, batch_size=13, stage_timings=timings,
        )
        total = sum(len(batch) for batch in warm.run())
        assert timings.counter("rows_reencoded") == 5
        assert 0 < timings.counter("pairs_rescored") <= total
        assert "block-extend" in timings.stages()
