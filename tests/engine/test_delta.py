"""Incremental (delta) resolution: equivalence, chunk reuse, baselines.

Three invariants pin the delta engine:

* **Equivalence** — for every registry domain, resolving base + appended
  rows through the delta plan yields the identical candidate stream and
  match set as a cold full resolve of the grown tables;
* **Chunk-fingerprint reuse** — appending ``k`` rows re-encodes only the
  tail (``rows_reencoded <= chunk-aligned k``; here exactly ``k``) and never
  the whole table (``tables_encoded`` stays 0, untouched sides included);
* **Baseline hygiene** — refitting the representation or swapping the
  matcher invalidates exactly the affected reuse (index, scores) while the
  output stays equivalent to a cold run.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BlockingConfig, VAEConfig
from repro.core.representation import EntityRepresentationModel
from repro.data.generators import (
    DOMAIN_NAMES,
    append_rows,
    delete_rows,
    load_domain,
    mutate_rows,
)
from repro.data.generators.base import DomainSpec, SyntheticDomainGenerator, compose, pick
from repro.engine import (
    EncodingStore,
    PersistentEncodingCache,
    ResolutionPlanner,
    ShardedEncodingStore,
    merge_scored_batches,
    resolve_delta,
    resolve_stream,
)
from repro.eval.timing import EngineCounters, StageTimings


class _DistanceMatcher:
    """Deterministic matcher stand-in: probability decays with IR distance.

    Purely elementwise per pair (no matmul), so its output is byte-identical
    regardless of batch composition — which lets the equivalence tests
    compare probabilities exactly instead of to a tolerance.
    """

    def predict_proba(self, left_irs: np.ndarray, right_irs: np.ndarray) -> np.ndarray:
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


def _tiny_entity(rng):
    pool_a = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
              "iota", "kappa", "lambda", "sigma", "omega", "nu", "xi", "pi"]
    pool_b = ["london", "paris", "berlin", "madrid", "rome", "vienna", "oslo", "dublin"]
    return (compose(rng, pool_a, 2, 3), pick(rng, pool_b), f"{rng.uniform(5, 200):.2f}")


def _fresh_tiny_domain():
    """A private small domain (regenerated per call, safe to mutate)."""
    spec = DomainSpec(
        name="deltatest",
        attributes=("name", "city", "price"),
        entity_factory=_tiny_entity,
        clean=True,
        numeric_attributes=(False, False, True),
        left_size=40,
        right_size=36,
        overlap_fraction=0.6,
        train_size=60,
        valid_size=12,
        test_size=24,
        positive_fraction=0.3,
    )
    return SyntheticDomainGenerator(spec, seed=77).generate()


@pytest.fixture(scope="module")
def delta_representation():
    """One representation fitted on the (deterministic) delta-test domain.

    Every test regenerates its own identical domain to mutate, so one
    module-scoped fit serves them all.
    """
    domain = _fresh_tiny_domain()
    config = VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=3, seed=5)
    return EntityRepresentationModel(config, ir_method="lsa").fit(domain.task)


class TestRegistryEquivalence:
    @pytest.mark.parametrize("name", DOMAIN_NAMES)
    def test_delta_resolve_equals_cold_full_resolve(self, name):
        """The acceptance contract, on every registry domain: base + append
        through the delta plan == cold full resolve of the grown tables."""
        domain = load_domain(name, scale=0.2)
        representation = EntityRepresentationModel(
            VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=7), ir_method="lsa"
        ).fit(domain.task)
        matcher = _DistanceMatcher()
        blocking = BlockingConfig(seed=19)

        store = ShardedEncodingStore(
            representation, domain.task, counters=EngineCounters(), shard_rows=16
        )
        executor = resolve_delta(store, matcher, baseline=None, blocking=blocking, k=4, batch_size=13)
        base = merge_scored_batches(executor.run())
        baseline = executor.baseline_out
        assert baseline is not None and len(baseline.scores) == len(base)
        assert store.counters.tables_encoded == 2  # the cold encodes

        append_rows(domain, side="right", rows=9)
        append_rows(domain, side="left", rows=5)
        rescored_before = store.counters.pairs_rescored
        warm = resolve_delta(
            store, matcher, baseline=baseline, blocking=blocking, k=4, batch_size=13
        )
        delta = merge_scored_batches(warm.run())
        # Only the appended tails were pushed through the encoder.
        assert store.counters.tables_encoded == 2, "delta run must not re-encode tables"
        assert store.counters.rows_reencoded == 14
        rescored = store.counters.pairs_rescored - rescored_before
        assert 0 < rescored < len(delta), "some baseline scores must be reused"

        cold_store = ShardedEncodingStore(
            representation, domain.task, counters=EngineCounters(), shard_rows=16
        )
        cold = merge_scored_batches(
            resolve_stream(cold_store, matcher, blocking=blocking, k=4, batch_size=13)
        )
        assert [p.key() for p in delta.pairs] == [p.key() for p in cold.pairs]
        # Reused pairs are byte-identical; tail rows were encoded in a
        # different matmul batch shape, so rescored pairs agree to float
        # round-off (same tolerance the monolithic-vs-streamed tests use).
        np.testing.assert_allclose(delta.probabilities, cold.probabilities, atol=1e-9)
        assert {p.key() for p in delta.matches()} == {p.key() for p in cold.matches()}

    @pytest.mark.parametrize("name", DOMAIN_NAMES)
    def test_mutation_delta_equals_cold_full_resolve(self, name):
        """The mutation acceptance contract, on every registry domain: after
        k in-place edits + d deletions + a appends to a warm table, the delta
        resolve re-encodes exactly k + a rows, tombstones exactly d, keeps
        deleted rows out of the candidate stream, and yields the identical
        match set as a cold full resolve of the mutated tables."""
        domain = load_domain(name, scale=0.2)
        representation = EntityRepresentationModel(
            VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=7), ir_method="lsa"
        ).fit(domain.task)
        matcher = _DistanceMatcher()
        blocking = BlockingConfig(seed=19)

        store = ShardedEncodingStore(
            representation, domain.task, counters=EngineCounters(), shard_rows=16
        )
        executor = resolve_delta(store, matcher, baseline=None, blocking=blocking, k=4, batch_size=13)
        merge_scored_batches(executor.run())
        baseline = executor.baseline_out

        # Delete first, then edit (edits always target surviving rows), then
        # append — so re-encode work is exactly k edits + a appends.
        deleted = delete_rows(domain, side="right", rows=4)
        edited = mutate_rows(domain, side="right", rows=5)
        mutate_rows(domain, side="left", rows=2)
        appended = append_rows(domain, side="right", rows=6)
        # An append may re-issue a deleted trailing id (delete + re-add); the
        # tombstoned *row* is still gone, so exclude re-issued ids below.
        deleted_ids = {r.record_id for r in deleted} - {r.record_id for r in appended}
        edited_ids = {r.record_id for r in edited}

        rows_before = store.counters.rows_reencoded
        rescored_before = store.counters.pairs_rescored
        warm = resolve_delta(
            store, matcher, baseline=baseline, blocking=blocking, k=4, batch_size=13
        )
        delta = merge_scored_batches(warm.run())
        assert store.counters.tables_encoded == 2, "delta run must not re-encode tables"
        assert store.counters.rows_reencoded - rows_before == 5 + 2 + 6
        assert store.counters.rows_tombstoned == 4
        # Tombstoned rows never surface in any candidate pair.
        assert all(p.right_id not in deleted_ids for p in delta.pairs)
        rescored = store.counters.pairs_rescored - rescored_before
        assert 0 < rescored < len(delta), "some baseline scores must be reused"
        # Every pair touching an edited right row was rescored, not reused.
        stale = [p for p in delta.pairs if p.right_id in edited_ids]
        assert stale, "edited rows should still block (they remain similar)"

        cold_store = ShardedEncodingStore(
            representation, domain.task, counters=EngineCounters(), shard_rows=16
        )
        cold = merge_scored_batches(
            resolve_stream(cold_store, matcher, blocking=blocking, k=4, batch_size=13)
        )
        assert [p.key() for p in delta.pairs] == [p.key() for p in cold.pairs]
        np.testing.assert_allclose(delta.probabilities, cold.probabilities, atol=1e-9)
        assert {p.key() for p in delta.matches()} == {p.key() for p in cold.matches()}

    def test_parallel_delta_tail_matches_serial(self):
        """workers>1 fans the pending-row encode and left-shard queries across
        the pool; the stream must stay byte-identical to the serial delta run
        (and therefore equivalent to a cold resolve)."""
        domain = _fresh_tiny_domain()
        twin = _fresh_tiny_domain()
        representation = EntityRepresentationModel(
            VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=3), ir_method="lsa"
        ).fit(domain.task)
        matcher = _DistanceMatcher()
        blocking = BlockingConfig(seed=19)

        def capture(d):
            store = ShardedEncodingStore(
                representation, d.task, counters=EngineCounters(), shard_rows=8
            )
            executor = resolve_delta(store, matcher, baseline=None, blocking=blocking, k=4, batch_size=13)
            merge_scored_batches(executor.run())
            return store, executor.baseline_out

        store_serial, baseline_serial = capture(domain)
        store_pooled, baseline_pooled = capture(twin)
        for d in (domain, twin):
            mutate_rows(d, side="right", rows=3)
            append_rows(d, side="right", rows=20)  # > shard_rows: fans out

        serial = merge_scored_batches(resolve_delta(
            store_serial, matcher, baseline=baseline_serial, blocking=blocking,
            k=4, batch_size=13, workers=1,
        ).run())
        pooled_executor = resolve_delta(
            store_pooled, matcher, baseline=baseline_pooled, blocking=blocking,
            k=4, batch_size=13, workers=2,
        )
        assert pooled_executor.plan.workers == 2
        encode_units = pooled_executor.plan.stage("encode").units
        assert any("delta[" in unit.name for unit in encode_units), (
            "a pending tail larger than one shard must fan out in the plan"
        )
        pooled = merge_scored_batches(pooled_executor.run())
        assert store_pooled.counters.rows_reencoded == store_serial.counters.rows_reencoded == 23
        assert [p.key() for p in pooled.pairs] == [p.key() for p in serial.pairs]
        np.testing.assert_array_equal(pooled.probabilities, serial.probabilities)
        assert {p.key() for p in pooled.matches()} == {p.key() for p in serial.matches()}

    def test_rescored_pairs_all_involve_new_rows(self):
        """The score stage restricts matcher work to pairs touching new rows."""
        domain = _fresh_tiny_domain()
        representation = EntityRepresentationModel(
            VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=3), ir_method="lsa"
        ).fit(domain.task)
        matcher = _DistanceMatcher()
        store = EncodingStore(representation, domain.task, counters=EngineCounters())
        executor = resolve_delta(store, matcher, baseline=None, k=4, batch_size=13)
        base = merge_scored_batches(executor.run())
        baseline = executor.baseline_out
        old_left = {p.left_id for p in base.pairs} | {r.record_id for r in domain.task.left}
        old_right = {r.record_id for r in domain.task.right}

        appended = append_rows(domain, side="right", rows=7)
        new_right = {r.record_id for r in appended}
        rescored_before = store.counters.pairs_rescored
        warm = resolve_delta(store, matcher, baseline=baseline, k=4, batch_size=13)
        delta = merge_scored_batches(warm.run())
        # Every pair absent from the baseline involves an appended row; all
        # old-old pairs were served from the baseline scores.
        fresh = [p for p in delta.pairs if (p.left_id, p.right_id) not in baseline.scores]
        assert fresh, "growing the right table must surface new candidate pairs"
        assert all(p.right_id in new_right for p in fresh)
        assert store.counters.pairs_rescored - rescored_before == len(fresh)
        assert all(p.left_id in old_left and p.right_id in (old_right | new_right) for p in delta.pairs)


class TestChunkFingerprintReuse:
    @pytest.fixture(scope="module")
    def grown_state(self, delta_representation, tmp_path_factory):
        """A domain + warm chunked cache that hypothesis examples keep growing."""
        domain = _fresh_tiny_domain()
        cache = PersistentEncodingCache(
            tmp_path_factory.mktemp("delta-cache"), chunk_rows=16
        )
        cold = EncodingStore(
            delta_representation, domain.task, counters=EngineCounters(), persistent=cache
        )
        cold.table_encodings("left")
        cold.table_encodings("right")
        assert cold.counters.tables_encoded == 2
        return domain, cache

    @settings(max_examples=8, deadline=None)
    @given(k=st.integers(min_value=1, max_value=40))
    def test_appending_k_rows_reencodes_at_most_chunk_aligned_k(
        self, grown_state, delta_representation, k
    ):
        """Per-chunk fingerprints keep every pre-append chunk valid: a fresh
        store over the grown table re-encodes exactly the k appended rows
        (trivially <= the chunk-aligned bound) and zero whole tables."""
        domain, cache = grown_state
        base_rows = len(domain.task.right)
        append_rows(domain, side="right", rows=k)

        store = EncodingStore(
            delta_representation, domain.task, counters=EngineCounters(), persistent=cache
        )
        grown = store.table_encodings("right")
        store.table_encodings("left")  # untouched side: pure disk hit
        chunk_aligned = -(-k // cache.chunk_rows) * cache.chunk_rows
        assert store.counters.tables_encoded == 0
        assert store.counters.rows_reencoded == k <= chunk_aligned
        assert store.counters.disk_hits == 2
        assert len(grown) == base_rows + k

    def test_mutated_table_served_from_patched_cache(self, delta_representation, tmp_path):
        """A fresh store over a patched entry pays only for the mutation, and
        the store after it pays nothing at all."""
        domain = _fresh_tiny_domain()
        cache = PersistentEncodingCache(tmp_path / "mut-cache", chunk_rows=16)
        cold = EncodingStore(
            delta_representation, domain.task, counters=EngineCounters(), persistent=cache
        )
        cold.table_encodings("right")
        assert cold.counters.tables_encoded == 1

        deleted = delete_rows(domain, side="right", rows=3)
        mutate_rows(domain, side="right", rows=4)
        append_rows(domain, side="right", rows=5)

        warm = EncodingStore(
            delta_representation, domain.task, counters=EngineCounters(), persistent=cache
        )
        served = warm.table_encodings("right")
        assert warm.counters.tables_encoded == 0
        assert warm.counters.rows_reencoded == 4 + 5
        assert warm.counters.rows_tombstoned == 3
        assert warm.counters.chunks_patched >= 1
        assert served.keys == tuple(domain.task.right.record_ids())
        assert all(r.record_id not in served.row_index for r in deleted)

        # The patch landed: the next fresh store is a pure disk hit.
        exact = EncodingStore(
            delta_representation, domain.task, counters=EngineCounters(), persistent=cache
        )
        again = exact.table_encodings("right")
        assert exact.counters.tables_encoded == 0
        assert exact.counters.rows_reencoded == 0
        assert exact.counters.disk_hits == 1
        np.testing.assert_array_equal(np.asarray(again.mu), np.asarray(served.mu))
        # And the served encodings equal a from-scratch encode of the table
        # (to float round-off: re-encoded rows rode a different matmul batch
        # shape, like every other delta path).
        scratch = EncodingStore(
            delta_representation, domain.task, counters=EngineCounters()
        ).table_encodings("right")
        np.testing.assert_allclose(np.asarray(again.irs), scratch.irs, atol=1e-12)
        np.testing.assert_allclose(np.asarray(again.mu), scratch.mu, atol=1e-12)

    def test_in_memory_mutation_refresh_without_disk_cache(self, delta_representation):
        """A live store notices edits and deletions on its backing table and
        refreshes through the row-identity diff — no persistent cache."""
        domain = _fresh_tiny_domain()
        store = EncodingStore(delta_representation, domain.task, counters=EngineCounters())
        first = store.table_encodings("right")
        edited = mutate_rows(domain, side="right", rows=2)
        removed = delete_rows(domain, side="right", rows=2)
        second = store.table_encodings("right")
        assert store.counters.tables_encoded == 1  # only the cold encode
        assert store.counters.rows_reencoded == 2
        assert store.counters.rows_tombstoned == 2
        assert len(second) == len(first) - 2
        assert second.keys == tuple(domain.task.right.record_ids())
        edited_ids = {r.record_id for r in edited}
        removed_ids = {r.record_id for r in removed}
        for key in second.keys:
            if key in edited_ids:
                continue
            np.testing.assert_array_equal(
                second.mu[second.row_index[key]], first.mu[first.row_index[key]]
            )
        assert removed_ids.isdisjoint(second.row_index)
        for key in edited_ids - removed_ids:
            assert not np.array_equal(
                second.mu[second.row_index[key]], first.mu[first.row_index[key]]
            )
        # The refreshed table is served from cache on the next access.
        hits_before = store.counters.cache_hits
        store.table_encodings("right")
        assert store.counters.cache_hits == hits_before + 1

    def test_in_memory_append_refresh_without_disk_cache(self, delta_representation):
        """A live store notices its backing table grew and refreshes via the
        same append-only path — no persistent cache required."""
        domain = _fresh_tiny_domain()
        store = EncodingStore(delta_representation, domain.task, counters=EngineCounters())
        first = store.table_encodings("right")
        append_rows(domain, side="right", rows=6)
        second = store.table_encodings("right")
        assert store.counters.tables_encoded == 1  # only the cold encode
        assert store.counters.rows_reencoded == 6
        assert second.keys[: len(first)] == first.keys
        np.testing.assert_array_equal(second.mu[: len(first)], first.mu)
        np.testing.assert_array_equal(second.irs[: len(first)], first.irs)
        # The refreshed table is served from cache on the next access.
        hits_before = store.counters.cache_hits
        store.table_encodings("right")
        assert store.counters.cache_hits == hits_before + 1

    def test_fingerprint_memoization(self, delta_representation):
        domain = _fresh_tiny_domain()
        store = EncodingStore(delta_representation, domain.task, counters=EngineCounters())
        first = store.table_fingerprint("right")
        for _ in range(5):
            assert store.table_fingerprint("right") == first
        assert store.counters.fingerprints_computed == 1
        # Growth changes the identity: exactly one recompute.
        append_rows(domain, side="right", rows=3)
        assert store.table_fingerprint("right") != first
        assert store.counters.fingerprints_computed == 2


class TestMutationProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        k=st.integers(min_value=0, max_value=6),
        d=st.integers(min_value=0, max_value=6),
        a=st.integers(min_value=0, max_value=10),
    )
    def test_random_mutation_mix_reencodes_exactly_k_plus_a(
        self, delta_representation, k, d, a
    ):
        """For any mix of k edits, d deletes and a appends to the right table:
        ``rows_reencoded == k + a``, tombstoned rows never appear in any
        candidate pair, and the match set equals a cold resolve."""
        domain = _fresh_tiny_domain()
        matcher = _DistanceMatcher()
        blocking = BlockingConfig(seed=19)
        store = EncodingStore(delta_representation, domain.task, counters=EngineCounters())
        executor = resolve_delta(store, matcher, baseline=None, blocking=blocking, k=4, batch_size=13)
        merge_scored_batches(executor.run())
        baseline = executor.baseline_out

        deleted_ids = set()
        reissued = 0
        if d:
            deleted_ids = {r.record_id for r in delete_rows(domain, side="right", rows=d)}
        if k:
            mutate_rows(domain, side="right", rows=k)
        if a:
            # Appends may re-issue deleted trailing ids (delete + re-add);
            # those rows are new, not the tombstoned ones.  A re-issued id
            # whose position realigns is classified as an in-place edit
            # instead of delete + append — either way it re-encodes once.
            appended_ids = {r.record_id for r in append_rows(domain, side="right", rows=a)}
            reissued = len(deleted_ids & appended_ids)
            deleted_ids -= appended_ids

        rows_before = store.counters.rows_reencoded
        tombstoned_before = store.counters.rows_tombstoned
        warm = resolve_delta(
            store, matcher, baseline=baseline, blocking=blocking, k=4, batch_size=13
        )
        delta = merge_scored_batches(warm.run())
        assert store.counters.rows_reencoded - rows_before == k + a
        assert d - reissued <= store.counters.rows_tombstoned - tombstoned_before <= d
        assert store.counters.tables_encoded == 2  # the cold capture only
        assert all(p.right_id not in deleted_ids for p in delta.pairs)

        cold_store = EncodingStore(
            delta_representation, domain.task, counters=EngineCounters()
        )
        cold = merge_scored_batches(
            resolve_stream(cold_store, matcher, blocking=blocking, k=4, batch_size=13)
        )
        assert [p.key() for p in delta.pairs] == [p.key() for p in cold.pairs]
        np.testing.assert_allclose(delta.probabilities, cold.probabilities, atol=1e-9)
        assert {p.key() for p in delta.matches()} == {p.key() for p in cold.matches()}


class TestBaselineHygiene:
    def _fit(self, domain, seed=3):
        return EntityRepresentationModel(
            VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=seed), ir_method="lsa"
        ).fit(domain.task)

    def test_refit_invalidates_baseline_but_stays_equivalent(self):
        domain = _fresh_tiny_domain()
        representation = self._fit(domain)
        matcher = _DistanceMatcher()
        store = EncodingStore(representation, domain.task, counters=EngineCounters())
        executor = resolve_delta(store, matcher, baseline=None, k=4, batch_size=13)
        list(executor.run())
        baseline = executor.baseline_out

        representation.fit(domain.task, epochs=1)  # bumps encoding_version
        warm = resolve_delta(store, matcher, baseline=baseline, k=4, batch_size=13)
        refreshed = merge_scored_batches(warm.run())
        assert warm.baseline_out.encoding_version == representation.encoding_version
        # Stale baseline contributed nothing: everything was rescored.
        assert store.counters.pairs_rescored >= len(refreshed)

        cold_store = EncodingStore(representation, domain.task, counters=EngineCounters())
        cold = merge_scored_batches(resolve_stream(cold_store, matcher, k=4, batch_size=13))
        assert [p.key() for p in refreshed.pairs] == [p.key() for p in cold.pairs]
        np.testing.assert_array_equal(refreshed.probabilities, cold.probabilities)

    def test_abandoned_stream_cannot_poison_the_baseline(self, delta_representation):
        """An abandoned delta stream mutates the baseline index in place but
        never publishes a new baseline; the next run against the *kept*
        baseline must notice (index mutation counter) and rebuild instead of
        trusting the half-mutated index — even when the mutation was a
        vector-only patch that key comparison cannot see."""
        domain = _fresh_tiny_domain()
        matcher = _DistanceMatcher()
        store = EncodingStore(delta_representation, domain.task, counters=EngineCounters())
        executor = resolve_delta(store, matcher, baseline=None, k=4, batch_size=13)
        merge_scored_batches(executor.run())
        baseline = executor.baseline_out
        mutations_at_capture = baseline.index.mutations

        # Edit one right row in place (keys unchanged), start an incremental
        # resolve, consume a single batch, abandon the stream.
        records_before = {r.record_id: r for r in domain.task.right}
        edited = mutate_rows(domain, side="right", rows=1, seed=31)[0]
        abandoned = resolve_delta(store, matcher, baseline=baseline, k=4, batch_size=13)
        stream = abandoned.run()
        next(iter(stream))
        assert abandoned.baseline_out is None, "an abandoned stream publishes nothing"
        assert baseline.index.mutations != mutations_at_capture, (
            "the abandoned run patched the index in place"
        )

        # Revert the edit: the table now matches the baseline snapshot again,
        # but the index does not — reuse must be refused.
        domain.task.right.replace(records_before[edited.record_id])
        assert not baseline.index_usable(
            delta_representation.encoding_version,
            None,
            baseline.diff_side("right", domain.task.right),
        )
        warm = merge_scored_batches(
            resolve_delta(store, matcher, baseline=baseline, k=4, batch_size=13).run()
        )
        cold_store = EncodingStore(
            delta_representation, domain.task, counters=EngineCounters()
        )
        cold = merge_scored_batches(resolve_stream(cold_store, matcher, k=4, batch_size=13))
        assert [p.key() for p in warm.pairs] == [p.key() for p in cold.pairs]
        np.testing.assert_allclose(warm.probabilities, cold.probabilities, atol=1e-9)
        assert {p.key() for p in warm.matches()} == {p.key() for p in cold.matches()}

    def test_new_matcher_invalidates_scores_not_index(self, delta_representation):
        domain = _fresh_tiny_domain()
        store = EncodingStore(delta_representation, domain.task, counters=EngineCounters())
        executor = resolve_delta(store, _DistanceMatcher(), baseline=None, k=4, batch_size=13)
        base = merge_scored_batches(executor.run())
        baseline = executor.baseline_out

        rescored_before = store.counters.pairs_rescored
        other = _DistanceMatcher()  # different object: scores must not be reused
        warm = resolve_delta(store, other, baseline=baseline, k=4, batch_size=13)
        again = merge_scored_batches(warm.run())
        assert store.counters.pairs_rescored - rescored_before == len(again)
        assert [p.key() for p in again.pairs] == [p.key() for p in base.pairs]
        # The index, which depends only on the encodings, was reused as-is.
        assert warm.baseline_out.index is baseline.index


class TestPipelineBaselineLifecycle:
    def test_refitting_matcher_drops_the_captured_baseline(self):
        """Baseline scores belong to the matcher that produced them: a refit
        must clear the pipeline's baseline so a recycled object identity can
        never serve the old matcher's probabilities."""
        from repro.config import MatcherConfig, VAERConfig
        from repro.core import VAER

        domain = _fresh_tiny_domain()
        config = VAERConfig(
            vae=VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=3),
            matcher=MatcherConfig(epochs=5, mlp_hidden=(16, 8), seed=5),
        )
        model = VAER(config).fit_representation(domain.task)
        model.fit_matcher(domain.splits.train, domain.splits.validation)
        list(model.resolve_stream(k=4, batch_size=13, incremental=True))
        assert model._baseline is not None
        assert model._baseline.matcher is model.matcher
        model.fit_matcher(domain.splits.train, domain.splits.validation)
        assert model._baseline is None
        # And a refit representation clears it too.
        list(model.resolve_stream(k=4, batch_size=13, incremental=True))
        model.fit_representation(domain.task)
        assert model._baseline is None


class TestDeltaPlan:
    def test_delta_plan_stage_graph(self):
        domain = _fresh_tiny_domain()
        planner = ResolutionPlanner(domain.task, k=4, batch_size=13, shard_rows=16)
        base_right = len(domain.task.right) - 6
        plan = planner.plan_delta(
            base_left_rows=len(domain.task.left), base_right_rows=base_right, index_reusable=True
        )
        assert [stage.name for stage in plan.stages] == ["encode", "block", "score"]
        assert plan.workers == 1
        assert plan.delta.base_right_rows == base_right
        assert plan.delta.new_rows("right", plan.right_rows) == 6
        assert plan.delta.new_rows("left", plan.left_rows) == 0
        encode = plan.stage("encode")
        assert encode.units[0].rows == 0 and "cached" in encode.units[0].detail
        assert encode.units[1].rows == 6 and "append-only" in encode.units[1].detail
        block = plan.stage("block")
        assert block.units[0].name == "extend right" and block.units[0].rows == 6
        assert "new or dirty rows" in plan.stage("score").units[0].detail

    def test_delta_plan_mutation_units(self):
        """Edits and deletions surface as patch/tombstone units in the graph."""
        domain = _fresh_tiny_domain()
        planner = ResolutionPlanner(domain.task, k=4, batch_size=13, shard_rows=16)
        plan = planner.plan_delta(
            base_left_rows=len(domain.task.left),
            base_right_rows=len(domain.task.right) - 5,
            index_reusable=True,
            dirty_right_rows=3,
            deleted_right_rows=2,
        )
        assert plan.delta.dirty_right_rows == 3
        assert plan.delta.deleted_right_rows == 2
        encode_names = [unit.name for unit in plan.stage("encode").units]
        assert "right patch" in encode_names and "right tail" in encode_names
        block_names = [unit.name for unit in plan.stage("block").units]
        assert block_names[:3] == ["tombstone right", "patch right", "extend right"]
        text = plan.describe()
        assert "dirty 3" in text and "deleted 2" in text
        assert "tombstone right" in text

    def test_delta_plan_pooled_encode_units(self):
        """With workers > 1, pending rows beyond one shard fan into per-slice
        encode units."""
        domain = _fresh_tiny_domain()
        planner = ResolutionPlanner(domain.task, k=4, batch_size=13, workers=2, shard_rows=8)
        plan = planner.plan_delta(
            base_left_rows=len(domain.task.left),
            base_right_rows=len(domain.task.right) - 20,
            index_reusable=True,
        )
        assert plan.workers == 2
        names = [unit.name for unit in plan.stage("encode").units]
        assert names[0] == "left"
        assert [n for n in names if n.startswith("right delta[")], names
        fanned = [unit for unit in plan.stage("encode").units if "delta[" in unit.name]
        assert sum(unit.rows for unit in fanned) == 20

    def test_delta_plan_without_baseline_is_cold(self):
        domain = _fresh_tiny_domain()
        plan = ResolutionPlanner(domain.task, k=4, batch_size=13, shard_rows=16).plan_delta()
        assert plan.stage("block").units[0].name == "build right"
        assert all(unit.rows > 0 for unit in plan.stage("encode").units)
        # Base rows are clamped into the table's range.
        clamped = ResolutionPlanner(domain.task, shard_rows=16).plan_delta(10_000, -5)
        assert clamped.delta.base_left_rows == len(domain.task.left)
        assert clamped.delta.base_right_rows == 0

    def test_delta_plan_describe_mentions_delta(self):
        domain = _fresh_tiny_domain()
        plan = ResolutionPlanner(domain.task, k=4, shard_rows=16).plan_delta(
            base_left_rows=len(domain.task.left), base_right_rows=30, index_reusable=True
        )
        text = plan.describe()
        assert "delta:" in text and "extend right" in text
        assert f"base {30}" in text

    def test_stage_timings_carry_delta_counters(self, delta_representation):
        domain = _fresh_tiny_domain()
        store = EncodingStore(delta_representation, domain.task, counters=EngineCounters())
        executor = resolve_delta(store, _DistanceMatcher(), baseline=None, k=4, batch_size=13)
        list(executor.run())
        append_rows(domain, side="right", rows=5)
        timings = StageTimings()
        warm = resolve_delta(
            store, _DistanceMatcher(), baseline=executor.baseline_out,
            k=4, batch_size=13, stage_timings=timings,
        )
        total = sum(len(batch) for batch in warm.run())
        assert timings.counter("rows_reencoded") == 5
        assert 0 < timings.counter("pairs_rescored") <= total
        assert "block-extend" in timings.stages()
