"""Streaming resolution: bounded batches, equivalence with monolithic resolve."""

import numpy as np
import pytest

from repro.config import MatcherConfig, VAERConfig, VAEConfig
from repro.core import VAER
from repro.engine import EncodingStore, resolve_stream, stream_candidate_pairs
from repro.eval.timing import EngineCounters


@pytest.fixture(scope="module")
def resolved_pipeline(tiny_domain):
    config = VAERConfig(
        vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=4, seed=3),
        matcher=MatcherConfig(epochs=15, mlp_hidden=(24, 12), seed=5),
    )
    model = VAER(config).fit_representation(tiny_domain.task)
    model.fit_matcher(tiny_domain.splits.train, tiny_domain.splits.validation)
    return model


class TestStreamCandidatePairs:
    def test_covers_same_pairs_as_monolithic_blocking(self, resolved_pipeline):
        monolithic = resolved_pipeline.candidate_pairs(k=5)
        streamed = [
            pair
            for chunk in stream_candidate_pairs(
                resolved_pipeline.store, blocking=resolved_pipeline.config.blocking, k=5, query_chunk=7
            )
            for pair in chunk
        ]
        assert [p.key() for p in streamed] == [p.key() for p in monolithic]

    def test_rejects_bad_chunk_size_eagerly(self, resolved_pipeline):
        # The error must surface at call time, not on first iteration.
        with pytest.raises(ValueError):
            stream_candidate_pairs(resolved_pipeline.store, query_chunk=0)


class TestResolveStream:
    def test_matches_monolithic_resolve(self, resolved_pipeline):
        monolithic = resolved_pipeline.resolve(k=5)
        pairs, probabilities = [], []
        for batch in resolved_pipeline.resolve_stream(k=5, batch_size=13):
            pairs.extend(batch.pairs)
            probabilities.append(batch.probabilities)
        probabilities = np.concatenate(probabilities)
        assert [p.key() for p in pairs] == [p.key() for p in monolithic.pairs]
        np.testing.assert_allclose(probabilities, monolithic.probabilities, atol=1e-8)

    def test_batches_are_bounded(self, resolved_pipeline):
        batch_sizes = [len(batch) for batch in resolved_pipeline.resolve_stream(k=5, batch_size=13)]
        assert all(size <= 13 for size in batch_sizes)
        assert all(size == 13 for size in batch_sizes[:-1])  # only the tail is short

    def test_batch_indices_sequential(self, resolved_pipeline):
        indices = [batch.batch_index for batch in resolved_pipeline.resolve_stream(k=5, batch_size=13)]
        assert indices == list(range(len(indices)))

    def test_batch_matches_respect_threshold(self, resolved_pipeline):
        for batch in resolved_pipeline.resolve_stream(k=5, batch_size=13):
            expected = sum(p > batch.threshold for p in batch.probabilities)
            assert len(batch.matches()) == expected

    def test_rejects_bad_batch_size_eagerly(self, resolved_pipeline, tiny_domain):
        store = EncodingStore(
            resolved_pipeline.representation, tiny_domain.task, counters=EngineCounters()
        )
        # The error must surface at call time, not on first iteration.
        with pytest.raises(ValueError):
            resolve_stream(store, resolved_pipeline.matcher, batch_size=0)


class TestPipelineStoreLifecycle:
    def test_store_reused_across_calls(self, resolved_pipeline):
        assert resolved_pipeline.store is resolved_pipeline.store

    def test_new_representation_resets_store(self, tiny_domain):
        config = VAERConfig(vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2, seed=3))
        model = VAER(config).fit_representation(tiny_domain.task)
        first = model.store
        model.fit_representation(tiny_domain.task, epochs=1)
        assert model.store is not first
