"""Streaming resolution: bounded batches, equivalence with monolithic resolve."""

import numpy as np
import pytest

from repro.config import MatcherConfig, VAERConfig, VAEConfig
from repro.core import VAER
from repro.data.pairs import RecordPair
from repro.engine import EncodingStore, ScoredPairs, resolve_stream, stream_candidate_pairs
from repro.eval.timing import EngineCounters
from repro.exceptions import StaleEncodingError


@pytest.fixture(scope="module")
def resolved_pipeline(tiny_domain):
    config = VAERConfig(
        vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=4, seed=3),
        matcher=MatcherConfig(epochs=15, mlp_hidden=(24, 12), seed=5),
    )
    model = VAER(config).fit_representation(tiny_domain.task)
    model.fit_matcher(tiny_domain.splits.train, tiny_domain.splits.validation)
    return model


class TestStreamCandidatePairs:
    def test_covers_same_pairs_as_monolithic_blocking(self, resolved_pipeline):
        monolithic = resolved_pipeline.candidate_pairs(k=5)
        streamed = [
            pair
            for chunk in stream_candidate_pairs(
                resolved_pipeline.store, blocking=resolved_pipeline.config.blocking, k=5, query_chunk=7
            )
            for pair in chunk
        ]
        assert [p.key() for p in streamed] == [p.key() for p in monolithic]

    def test_rejects_bad_chunk_size_eagerly(self, resolved_pipeline):
        # The error must surface at call time, not on first iteration.
        with pytest.raises(ValueError):
            stream_candidate_pairs(resolved_pipeline.store, query_chunk=0)


class TestResolveStream:
    def test_matches_monolithic_resolve(self, resolved_pipeline):
        monolithic = resolved_pipeline.resolve(k=5)
        pairs, probabilities = [], []
        for batch in resolved_pipeline.resolve_stream(k=5, batch_size=13):
            pairs.extend(batch.pairs)
            probabilities.append(batch.probabilities)
        probabilities = np.concatenate(probabilities)
        assert [p.key() for p in pairs] == [p.key() for p in monolithic.pairs]
        np.testing.assert_allclose(probabilities, monolithic.probabilities, atol=1e-8)

    def test_batches_are_bounded(self, resolved_pipeline):
        batch_sizes = [len(batch) for batch in resolved_pipeline.resolve_stream(k=5, batch_size=13)]
        assert all(size <= 13 for size in batch_sizes)
        assert all(size == 13 for size in batch_sizes[:-1])  # only the tail is short

    def test_batch_indices_sequential(self, resolved_pipeline):
        indices = [batch.batch_index for batch in resolved_pipeline.resolve_stream(k=5, batch_size=13)]
        assert indices == list(range(len(indices)))

    def test_batch_matches_respect_threshold(self, resolved_pipeline):
        for batch in resolved_pipeline.resolve_stream(k=5, batch_size=13):
            expected = sum(p > batch.threshold for p in batch.probabilities)
            assert len(batch.matches()) == expected

    def test_rejects_bad_batch_size_eagerly(self, resolved_pipeline, tiny_domain):
        store = EncodingStore(
            resolved_pipeline.representation, tiny_domain.task, counters=EngineCounters()
        )
        # The error must surface at call time, not on first iteration.
        with pytest.raises(ValueError):
            resolve_stream(store, resolved_pipeline.matcher, batch_size=0)


class TestResolveStreamEdgeCases:
    def test_batch_size_one(self, resolved_pipeline):
        """The extreme chunking still covers the monolithic resolution exactly."""
        monolithic = resolved_pipeline.resolve(k=5)
        batches = list(resolved_pipeline.resolve_stream(k=5, batch_size=1))
        assert all(len(batch) == 1 for batch in batches)
        assert [b.pairs[0].key() for b in batches] == [p.key() for p in monolithic.pairs]
        probabilities = np.concatenate([b.probabilities for b in batches])
        np.testing.assert_allclose(probabilities, monolithic.probabilities, atol=1e-8)

    def test_k_larger_than_right_table(self, resolved_pipeline, tiny_domain):
        """Top-K clamps to the table size instead of failing or padding."""
        n_right = len(tiny_domain.task.right)
        k = n_right + 25
        pairs = [p for b in resolved_pipeline.resolve_stream(k=k, batch_size=64) for p in b.pairs]
        assert pairs, "oversized k must still produce candidates"
        per_query = {}
        for pair in pairs:
            per_query.setdefault(pair.left_id, []).append(pair.right_id)
        for neighbours in per_query.values():
            assert len(neighbours) <= n_right
            assert len(set(neighbours)) == len(neighbours)  # no duplicate fill

    def test_query_chunk_larger_than_left_table(self, resolved_pipeline, tiny_domain):
        """One oversized chunk equals the many-small-chunks enumeration."""
        store = resolved_pipeline.store
        blocking = resolved_pipeline.config.blocking
        big = [
            p for chunk in stream_candidate_pairs(
                store, blocking=blocking, k=5, query_chunk=10 * len(tiny_domain.task.left)
            )
            for p in chunk
        ]
        small = [
            p for chunk in stream_candidate_pairs(store, blocking=blocking, k=5, query_chunk=3)
            for p in chunk
        ]
        assert [p.key() for p in big] == [p.key() for p in small]

    def test_store_invalidated_mid_stream_raises(self, tiny_domain):
        """A version bump mid-stream must raise, not silently serve stale scores."""
        config = VAERConfig(
            vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2, seed=3),
            matcher=MatcherConfig(epochs=5, mlp_hidden=(24, 12), seed=5),
        )
        model = VAER(config).fit_representation(tiny_domain.task)
        model.fit_matcher(tiny_domain.splits.train)
        stream = model.resolve_stream(k=5, batch_size=13)
        first = next(iter(stream))
        assert len(first) == 13
        # Refitting bumps encoding_version: continuing would mix two encoders.
        model.representation.fit(tiny_domain.task, epochs=1)
        with pytest.raises(StaleEncodingError):
            next(stream)

    def test_candidate_stream_invalidation_raises(self, tiny_domain):
        """The blocking stream itself also refuses to span a version bump."""
        config = VAERConfig(vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2, seed=3))
        model = VAER(config).fit_representation(tiny_domain.task)
        chunks = stream_candidate_pairs(model.store, k=5, query_chunk=7)
        next(chunks)
        model.representation.fit(tiny_domain.task, epochs=1)
        with pytest.raises(StaleEncodingError):
            next(chunks)


class TestMatchThresholdBoundary:
    """Pin the strict `p > threshold` predicate on both resolution paths."""

    def _scored(self, threshold):
        pairs = [RecordPair("l0", "r0"), RecordPair("l1", "r1"), RecordPair("l2", "r2")]
        probabilities = np.array([threshold - 1e-12, threshold, np.nextafter(threshold, 1.0)])
        return ScoredPairs(pairs=pairs, probabilities=probabilities, threshold=threshold)

    @pytest.mark.parametrize("threshold", [0.5, 0.7])
    def test_probability_equal_to_threshold_is_not_a_match(self, threshold):
        scored = self._scored(threshold)
        matched = scored.matches()
        assert [p.key() for p in matched] == [("l2", "r2")]

    @pytest.mark.parametrize("threshold", [0.5, 0.7])
    def test_matches_agrees_with_pipeline_predicate(self, threshold):
        """ScoredPairs.matches() and the pipeline's `probabilities > threshold`
        evaluation predicate must make identical decisions at the boundary."""
        scored = self._scored(threshold)
        pipeline_decisions = (scored.probabilities > threshold).astype(int)
        stream_decisions = np.array(
            [int(any(p is pair for p in scored.matches())) for pair in scored.pairs]
        )
        np.testing.assert_array_equal(stream_decisions, pipeline_decisions)


class TestPipelineStoreLifecycle:
    def test_store_reused_across_calls(self, resolved_pipeline):
        assert resolved_pipeline.store is resolved_pipeline.store

    def test_new_representation_resets_store(self, tiny_domain):
        config = VAERConfig(vae=VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2, seed=3))
        model = VAER(config).fit_representation(tiny_domain.task)
        first = model.store
        model.fit_representation(tiny_domain.task, epochs=1)
        assert model.store is not first
