"""Persistent worker pool: spawn accounting, transport fallbacks, shared memory.

Three regressions pinned here:

* **Pool reuse** — a full pooled resolve spawns exactly one pool
  (:data:`repro.engine.shard.POOL_SPAWNS`), and delta rounds after it spawn
  none: the single-slot cache hands the same executor back across the
  encode → block → score stages and across resolves;
* **Transport equivalence** — forcing the threaded fallback
  (``REPRO_ENGINE_POOL=thread``) or the serial schedule
  (``REPRO_ENGINE_POOL=serial``) produces a byte-identical candidate stream
  and match set to the fork path on a registry domain;
* **Shared-memory lifecycle** — publish/attach round-trips hoisted arrays
  losslessly, attachments memoize, and publication close is idempotent.
"""

import sys

import numpy as np
import pytest

from repro.config import BlockingConfig, VAEConfig
from repro.core.representation import EntityRepresentationModel
from repro.data.generators import append_rows, load_domain
from repro.engine import (
    ShardedEncodingStore,
    merge_scored_batches,
    resolve_delta,
    resolve_sharded,
    resolve_stream,
)
from repro.engine import shard as shard_module
from repro.engine import sharedmem
from repro.engine.shard import acquire_pool, pool_kind_default, release_pool, shutdown_pools
from repro.eval.timing import EngineCounters


class _DistanceMatcher:
    """Deterministic, picklable matcher stand-in (see tests/engine/test_delta.py).

    Purely elementwise per pair, so probabilities are byte-identical
    regardless of batch composition or which transport scored them.
    """

    def predict_proba(self, left_irs: np.ndarray, right_irs: np.ndarray) -> np.ndarray:
        diffs = np.asarray(left_irs) - np.asarray(right_irs)
        distances = np.sqrt((diffs ** 2).sum(axis=(1, 2)))
        return 1.0 / (1.0 + distances)


@pytest.fixture(scope="module")
def pool_domain():
    """A registry domain plus a representation fitted on it.

    ``load_domain`` is deterministic, so tests that mutate tables regenerate
    their own identical copy and reuse this representation.
    """
    domain = load_domain("restaurants", scale=0.2)
    representation = EntityRepresentationModel(
        VAEConfig(ir_dim=12, hidden_dim=16, latent_dim=6, epochs=1, seed=7), ir_method="lsa"
    ).fit(domain.task)
    return domain, representation


def _store(representation, task):
    return ShardedEncodingStore(
        representation, task, counters=EngineCounters(), shard_rows=16
    )


def _needs_pool():
    if pool_kind_default() == "serial":
        pytest.skip("pool transport forced to serial in this environment")


class TestPoolReuse:
    def test_full_resolve_spawns_exactly_one_pool(self, pool_domain):
        _needs_pool()
        domain, representation = pool_domain
        store = _store(representation, domain.task)
        shutdown_pools()
        before = shard_module.POOL_SPAWNS
        merge_scored_batches(
            resolve_sharded(store, _DistanceMatcher(), k=4, batch_size=13, workers=2)
        )
        assert shard_module.POOL_SPAWNS == before + 1

    def test_delta_rounds_reuse_the_cached_pool(self, pool_domain):
        _needs_pool()
        _, representation = pool_domain
        domain = load_domain("restaurants", scale=0.2)  # private copy to mutate
        matcher = _DistanceMatcher()
        blocking = BlockingConfig(seed=19)
        store = _store(representation, domain.task)
        shutdown_pools()
        before = shard_module.POOL_SPAWNS
        executor = resolve_delta(
            store, matcher, baseline=None, blocking=blocking, k=4, batch_size=13, workers=2
        )
        merge_scored_batches(executor.run())
        assert shard_module.POOL_SPAWNS == before + 1, "cold resolve must spawn one pool"
        append_rows(domain, side="right", rows=7)
        warm = resolve_delta(
            store, matcher, baseline=executor.baseline_out, blocking=blocking,
            k=4, batch_size=13, workers=2,
        )
        merge_scored_batches(warm.run())
        assert shard_module.POOL_SPAWNS == before + 1, "delta round must reuse the cached pool"

    def test_broken_pool_is_not_recycled(self):
        _needs_pool()
        shutdown_pools()
        before = shard_module.POOL_SPAWNS
        pool = acquire_pool(2)
        assert shard_module.POOL_SPAWNS == before + 1
        pool.broken = True
        release_pool(pool)
        fresh = acquire_pool(2)
        assert shard_module.POOL_SPAWNS == before + 2, "broken pools must never be handed back"
        assert not fresh.broken
        release_pool(fresh)
        shutdown_pools()

    def test_shape_change_replaces_cached_pool(self):
        _needs_pool()
        shutdown_pools()
        before = shard_module.POOL_SPAWNS
        release_pool(acquire_pool(2))
        assert shard_module.POOL_SPAWNS == before + 1
        release_pool(acquire_pool(2))  # same shape: cached
        assert shard_module.POOL_SPAWNS == before + 1
        release_pool(acquire_pool(3))  # different shape: fresh spawn
        assert shard_module.POOL_SPAWNS == before + 2
        shutdown_pools()


class TestTransportEquivalence:
    def test_thread_fallback_matches_fork_path(self, pool_domain, monkeypatch):
        if pool_kind_default() != "fork":
            pytest.skip("fork transport unavailable here; nothing to compare against")
        domain, representation = pool_domain
        matcher = _DistanceMatcher()

        def run():
            store = _store(representation, domain.task)
            return merge_scored_batches(
                resolve_sharded(store, matcher, k=4, batch_size=13, workers=2)
            )

        forked = run()
        shutdown_pools()
        monkeypatch.setenv("REPRO_ENGINE_POOL", "thread")
        threaded = run()
        shutdown_pools()
        assert [p.key() for p in threaded.pairs] == [p.key() for p in forked.pairs]
        np.testing.assert_array_equal(threaded.probabilities, forked.probabilities)
        assert [p.key() for p in threaded.matches()] == [p.key() for p in forked.matches()]

    def test_serial_override_spawns_nothing_and_matches_stream(self, pool_domain, monkeypatch):
        domain, representation = pool_domain
        matcher = _DistanceMatcher()
        store = _store(representation, domain.task)
        streamed = merge_scored_batches(resolve_stream(store, matcher, k=4, batch_size=13))
        monkeypatch.setenv("REPRO_ENGINE_POOL", "serial")
        shutdown_pools()
        before = shard_module.POOL_SPAWNS
        pooled = merge_scored_batches(
            resolve_sharded(store, matcher, k=4, batch_size=13, workers=4)
        )
        assert shard_module.POOL_SPAWNS == before, "serial override must not spawn pools"
        assert [p.key() for p in pooled.pairs] == [p.key() for p in streamed.pairs]
        np.testing.assert_array_equal(pooled.probabilities, streamed.probabilities)

    def test_shm_kill_switch_forces_thread_transport(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_SHM", "0")
        monkeypatch.delenv("REPRO_ENGINE_POOL", raising=False)
        monkeypatch.setattr(sharedmem, "_available", None)  # drop the memoized probe
        assert not sharedmem.shared_memory_available()
        if sys.platform.startswith("linux"):
            assert pool_kind_default() == "thread"


class TestSharedMemoryStates:
    def test_publish_attach_roundtrip(self):
        if not sharedmem.shared_memory_available():
            pytest.skip("shared memory unavailable in this environment")
        big = np.arange(32768, dtype=np.float64).reshape(64, 512)  # >= hoist threshold
        state = {
            "big": big,
            "small": np.arange(4, dtype=np.int64),
            "label": "x",
            "nested": {"k": 3},
        }
        publication = sharedmem.publish_state("test-pool-roundtrip", state)
        try:
            assert publication.spec.arrays, "the large array must be hoisted to a segment"
            attached = sharedmem.attach_state(publication.spec)
            np.testing.assert_array_equal(attached["big"], big)
            np.testing.assert_array_equal(attached["small"], state["small"])
            assert attached["label"] == "x"
            assert attached["nested"] == {"k": 3}
            # Re-attaching the same spec is memoized, not re-unpickled.
            assert sharedmem.attach_state(publication.spec) is attached
        finally:
            sharedmem.detach_all()
            publication.close()
            publication.close()  # idempotent
