"""Reader/writer isolation across real processes.

A reader iterating ``load_reused`` / ``load_range`` while a *second
process* runs ``patch()`` + ``prune()`` on the same entry must never see a
torn manifest or crash on a vanished chunk: the write-then-rename manifest
swap plus immutable per-generation chunk archives mean every read either
serves data fully consistent with one manifest, or degrades to a clean
``None`` miss.

The writer rewrites the middle chunk (rows 8..16) every generation and
stamps all its encoding values with the generation number, so a torn read
is detectable: a successful load whose middle-chunk values are not all the
same integer would mix generations.
"""

import subprocess
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.engine import PersistentEncodingCache

# Shared by the parent reader and the writer subprocess via exec/embedding,
# so the fingerprint dicts both sides compute are byte-identical.
HELPER_SRC = '''
import numpy as np
from repro.data.schema import Record, Table
from repro.engine import TableEncodings, row_range_crc

TASK = "sync"
N = 32
CHUNK = 8
EDIT_LO, EDIT_HI = 8, 16


def build_table(gen):
    records = []
    for i in range(N):
        tag = gen if EDIT_LO <= i < EDIT_HI else 0
        records.append(Record(f"r{i}", (f"alpha-{i}-g{tag}", f"beta-{i}")))
    return Table(TASK, ("a", "b"), records)


def build_encodings(gen):
    keys = tuple(f"r{i}" for i in range(N))
    data = np.zeros((N, 2, 3))
    data[EDIT_LO:EDIT_HI] = float(gen)
    return TableEncodings(
        keys=keys, irs=data.copy(), mu=data.copy(), sigma=data.copy(),
        row_index={key: row for row, key in enumerate(keys)},
    )


def build_fingerprint(table):
    return {
        "model": {
            "ir_method": "lsa", "ir_dim": 3, "hidden_dim": 4, "latent_dim": 3,
            "seed": 1, "weights_crc": 1234,
        },
        "n_records": len(table),
        "content_crc": row_range_crc(table, 0, len(table)),
    }
'''

WRITER_SRC = HELPER_SRC + '''
import os
import sys
import time

from repro.engine import PersistentEncodingCache


def publish(gen_file, gen):
    tmp = gen_file + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(str(gen))
    os.replace(tmp, gen_file)


cache_dir, gen_file, iterations = sys.argv[1], sys.argv[2], int(sys.argv[3])
cache = PersistentEncodingCache(cache_dir, chunk_rows=CHUNK)
table = build_table(0)
cache.save(TASK, "right", 1, build_fingerprint(table), build_encodings(0), table=table)
publish(gen_file, 0)
for gen in range(1, iterations + 1):
    new_table = build_table(gen)
    fingerprint = build_fingerprint(new_table)
    delta = cache.delta(TASK, "right", 1, fingerprint, new_table)
    assert delta is not None, f"writer probe missed at generation {gen}"
    cache.patch(TASK, "right", 1, fingerprint, new_table, delta, build_encodings(gen))
    cache.prune()
    publish(gen_file, gen)
    time.sleep(0.005)
'''

_ns = {}
exec(HELPER_SRC, _ns)
build_table = _ns["build_table"]
build_fingerprint = _ns["build_fingerprint"]
TASK, N, EDIT_LO, EDIT_HI, CHUNK = (
    _ns["TASK"], _ns["N"], _ns["EDIT_LO"], _ns["EDIT_HI"], _ns["CHUNK"]
)

ITERATIONS = 25


def _middle_generation(encodings, iterations=ITERATIONS):
    """The single generation a consistent read's middle chunk carries."""
    mu = np.asarray(encodings.mu)
    assert np.all(mu[:EDIT_LO] == 0.0), "never-edited rows changed"
    assert np.all(mu[EDIT_HI:] == 0.0), "never-edited rows changed"
    middle = mu[EDIT_LO:EDIT_HI]
    value = middle.flat[0]
    assert np.all(middle == value), "torn read: middle chunk mixes generations"
    assert float(value).is_integer() and 0 <= value <= iterations
    return int(value)


def test_reader_survives_concurrent_patch_and_prune(tmp_path):
    cache_dir = tmp_path / "cache"
    gen_file = tmp_path / "generation.txt"
    writer = subprocess.Popen(
        [sys.executable, "-c", WRITER_SRC, str(cache_dir), str(gen_file), str(ITERATIONS)],
        env={"PYTHONPATH": str(Path(repro.__file__).parents[1]), "PATH": "/usr/bin:/bin"},
        stderr=subprocess.PIPE, text=True,
    )
    try:
        deadline = time.monotonic() + 120
        while not gen_file.exists():
            assert writer.poll() is None, f"writer died early: {writer.stderr.read()}"
            assert time.monotonic() < deadline, "writer never published generation 0"
            time.sleep(0.01)

        cache = PersistentEncodingCache(cache_dir, chunk_rows=CHUNK)
        reference = build_table(0)
        reference_fp = build_fingerprint(reference)
        reused_hits = range_hits = misses = 0

        while writer.poll() is None:
            assert time.monotonic() < deadline, "writer stuck"
            # The delta path: probe with the stale generation-0 table.  Rows
            # the writer has rewritten are classified dirty, so any served
            # reuse must carry only untouched (all-zero) rows.
            delta = cache.delta(TASK, "right", 1, reference_fp, reference)
            reused = (
                cache.load_reused(TASK, "right", 1, delta)
                if delta is not None else None
            )
            if reused is None:
                misses += 1
            else:
                positions, encodings = reused
                mu = np.asarray(encodings.mu)
                assert len(positions) == len(mu)
                clean = [p for p in positions if not (EDIT_LO <= p < EDIT_HI)]
                clean_rows = [row for p, row in zip(positions, mu) if not (EDIT_LO <= p < EDIT_HI)]
                assert len(clean) >= N - (EDIT_HI - EDIT_LO)
                assert np.all(np.asarray(clean_rows) == 0.0), "reader saw torn clean rows"
                reused_hits += 1
            # The range path: chase the writer's published generation.  The
            # fingerprint only matches while that manifest is still current,
            # so the read either hits consistently or misses cleanly.
            generation = int(gen_file.read_text())
            chased = build_table(generation)
            loaded = cache.load_range(
                TASK, "right", 1, build_fingerprint(chased), 0, N
            )
            if loaded is None:
                misses += 1
            else:
                assert _middle_generation(loaded) == generation
                range_hits += 1

        assert writer.wait() == 0, f"writer crashed: {writer.stderr.read()}"
        # Quiesced: the final generation is stable and must load in full.
        final = int(gen_file.read_text())
        assert final == ITERATIONS
        final_table = build_table(final)
        loaded = cache.load_range(TASK, "right", 1, build_fingerprint(final_table), 0, N)
        assert loaded is not None, "final stable read missed"
        assert _middle_generation(loaded) == ITERATIONS
        # The reader genuinely overlapped the writer and was served data.
        assert reused_hits > 0
        assert reused_hits + range_hits + misses > ITERATIONS / 2
    finally:
        if writer.poll() is None:
            writer.kill()
            writer.wait(timeout=30)
