"""Long-lived-process hygiene: the explicit idle-release path for engine
resources, and eager chunk-handle invalidation across patch generations.

Both were latent bugs while every process was one batch run: the pool and
its shared-memory segments were only torn down ``atexit``, and a ``patch()``
superseding a chunk left the old generation's open handle cached until LRU
eviction.  A daemon that serves for hours needs both released eagerly."""

import numpy as np
import pytest

from repro.data.schema import Record, Table
from repro.engine import (
    PersistentEncodingCache,
    TableEncodings,
    release_engine_resources,
    row_range_crc,
)
from repro.engine import shard as shard_module
from repro.engine import persist as persist_module
from repro.engine.persist import _chunk_handle, invalidate_chunk_handles
from repro.engine.shard import acquire_pool, publish_worker_state, release_pool


N = 20
CHUNK = 8


def _table(n=N, edited=()):
    records = []
    for i in range(n):
        suffix = "-EDITED" if i in edited else ""
        records.append(Record(f"r{i}", (f"alpha-{i}{suffix}", f"beta-{i}")))
    return Table("lifecycle", ("a", "b"), records)


def _encodings(n=N, seed=0):
    rng = np.random.default_rng(seed)
    keys = tuple(f"r{i}" for i in range(n))
    return TableEncodings(
        keys=keys,
        irs=rng.normal(size=(n, 2, 3)),
        mu=rng.normal(size=(n, 2, 3)),
        sigma=rng.normal(size=(n, 2, 3)),
        row_index={key: row for row, key in enumerate(keys)},
    )


def _fingerprint(table):
    return {
        "model": {
            "ir_method": "lsa", "ir_dim": 3, "hidden_dim": 4, "latent_dim": 3,
            "seed": 1, "weights_crc": 1234,
        },
        "n_records": len(table),
        "content_crc": row_range_crc(table, 0, len(table)),
    }


@pytest.fixture()
def patched_entry(tmp_path):
    """A saved entry whose middle chunk has been superseded by a patch.

    Returns ``(cache, fingerprint_after, merged_encodings, old_path,
    new_path)`` where ``old_path`` is the superseded generation-0 archive
    (still on disk) and ``new_path`` its generation-1 replacement.
    """
    cache = PersistentEncodingCache(tmp_path / "cache", chunk_rows=CHUNK)
    table = _table()
    encodings = _encodings()
    cache.save("lifecycle", "right", 1, _fingerprint(table), encodings, table=table)
    # Populate the handle cache for every chunk.
    assert cache.load("lifecycle", "right", 1, _fingerprint(table)) is not None

    edited = _table(edited=(10,))
    fingerprint = _fingerprint(edited)
    delta = cache.delta("lifecycle", "right", 1, fingerprint, edited)
    assert delta is not None and delta.dirty_positions() == (10,)
    merged = TableEncodings(
        keys=tuple(edited.record_ids()),
        irs=np.asarray(encodings.irs).copy(),
        mu=np.asarray(encodings.mu).copy(),
        sigma=np.asarray(encodings.sigma).copy(),
        row_index=dict(encodings.row_index),
    )
    merged.mu[10] += 1.0
    merged.irs[10] += 1.0

    old_path = cache.chunk_path("lifecycle", "right", 1, 8, 16, 0)
    assert str(old_path) in persist_module._handles  # cached by the load above
    cache.patch("lifecycle", "right", 1, fingerprint, edited, delta, merged)
    new_path = cache.chunk_path("lifecycle", "right", 1, 8, 16, 1)
    return cache, fingerprint, merged, old_path, new_path


class TestHandleInvalidation:
    def test_patch_eagerly_drops_superseded_handles(self, patched_entry):
        _, _, _, old_path, new_path = patched_entry
        # The superseded generation's handle left the cache the moment the
        # new manifest landed — not at some later LRU eviction.
        assert str(old_path) not in persist_module._handles
        assert old_path.exists()  # file stays on disk until prune
        assert new_path.exists()

    def test_prune_closes_cached_handle_before_unlink(self, patched_entry):
        cache, fingerprint, merged, old_path, _ = patched_entry
        # Simulate a long-lived process that still holds the dead archive in
        # its LRU (e.g. a reader opened it just before the patch landed).
        stale = _chunk_handle(old_path)
        assert stale is not None and str(old_path) in persist_module._handles
        removed = cache.prune()
        assert removed["files"] >= 1
        assert not old_path.exists()
        assert str(old_path) not in persist_module._handles
        assert stale._file.closed
        # The surviving entry still serves the patched state.
        loaded = cache.load("lifecycle", "right", 1, fingerprint)
        assert loaded is not None
        np.testing.assert_array_equal(np.asarray(loaded.mu), np.asarray(merged.mu))

    def test_invalidate_is_a_noop_for_uncached_paths(self, tmp_path):
        assert invalidate_chunk_handles([tmp_path / "never-opened.npz"]) == 0

    def test_clear_still_closes_everything(self, patched_entry):
        cache, fingerprint, _, _, new_path = patched_entry
        assert cache.load("lifecycle", "right", 1, fingerprint) is not None
        assert persist_module._handles
        cache.clear()
        assert not persist_module._handles
        assert not new_path.exists()


class TestReleaseEngineResources:
    def test_releases_pool_states_and_handles(self, tmp_path):
        pool = acquire_pool(2)
        release_pool(pool)
        assert shard_module._CACHED_POOL is not None
        handle = publish_worker_state({"stage": "probe"}, None)
        assert handle.token in shard_module._WORKER_STATES

        cache = PersistentEncodingCache(tmp_path / "cache", chunk_rows=CHUNK)
        table = _table()
        cache.save("lifecycle", "right", 1, _fingerprint(table), _encodings(), table=table)
        assert cache.load("lifecycle", "right", 1, _fingerprint(table)) is not None
        assert persist_module._handles

        release_engine_resources()
        assert shard_module._CACHED_POOL is None
        assert not shard_module._WORKER_STATES
        assert not shard_module._PUBLICATIONS
        assert not persist_module._handles
        release_engine_resources()  # idempotent

    def test_next_acquire_spawns_fresh_pool(self):
        release_pool(acquire_pool(2))
        spawns = shard_module.POOL_SPAWNS
        # A compatible cached pool is reused, no new spawn ...
        release_pool(acquire_pool(2))
        assert shard_module.POOL_SPAWNS == spawns
        # ... but after an idle release the next acquire starts fresh.
        release_engine_resources()
        pool = acquire_pool(2)
        try:
            assert shard_module.POOL_SPAWNS == spawns + 1
        finally:
            release_pool(pool)
            release_engine_resources()
