"""Persistent encoding cache: chunked layout, keying, invalidation, laziness,
and the content-addressed delta path (probe → prefix load → extend)."""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.config import VAEConfig
from repro.core.representation import EntityRepresentationModel
from repro.data.schema import Record, Table
from repro.engine import (
    EncodingStore,
    PersistentEncodingCache,
    TableEncodings,
    encoding_fingerprint,
    row_range_crc,
)
from repro.engine.persist import MANIFEST_NAME
from repro.eval.timing import EngineCounters


@pytest.fixture()
def cache(tmp_path):
    return PersistentEncodingCache(tmp_path / "enc-cache")


@pytest.fixture()
def small_chunk_cache(tmp_path):
    """Chunk rows smaller than the tiny tables, so entries span many chunks."""
    return PersistentEncodingCache(tmp_path / "enc-cache-chunked", chunk_rows=16)


def _store(representation, task, cache):
    return EncodingStore(representation, task, counters=EngineCounters(), persistent=cache)


def _chunks_of(cache, task_name, side, version):
    return sorted(cache.dir_for(task_name, side, version).glob("chunk-*.npz"))


class TestLayoutAndRoundtrip:
    def test_cold_run_encodes_and_writes(self, tiny_domain, tiny_representation, cache):
        store = _store(tiny_representation, tiny_domain.task, cache)
        store.table_encodings("left")
        store.table_encodings("right")
        assert store.counters.tables_encoded == 2
        assert store.counters.disk_misses == 2
        assert store.counters.disk_hits == 0
        version = tiny_representation.encoding_version
        expected = {
            cache.manifest_path(tiny_domain.task.name, side, version) for side in ("left", "right")
        }
        assert set(cache.entries()) == expected

    def test_documented_directory_layout(self, tiny_domain, tiny_representation, cache):
        """Layout contract: <cache_dir>/<task>/<side>-vN/{manifest.json,chunk-a-b.npz}"""
        version = tiny_representation.encoding_version
        chunk_dir = cache.dir_for(tiny_domain.task.name, "left", version)
        assert chunk_dir == cache.directory / tiny_domain.task.name / f"left-v{version}"
        assert cache.manifest_path(tiny_domain.task.name, "left", version) == chunk_dir / MANIFEST_NAME
        assert (
            cache.chunk_path(tiny_domain.task.name, "left", version, 0, 16)
            == chunk_dir / "chunk-0-16.npz"
        )

    def test_entry_spans_row_range_chunks(self, tiny_domain, tiny_representation, small_chunk_cache):
        store = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        left = store.table_encodings("left")
        version = tiny_representation.encoding_version
        chunks = _chunks_of(small_chunk_cache, tiny_domain.task.name, "left", version)
        n = len(left)
        expected = [
            small_chunk_cache.chunk_path(
                tiny_domain.task.name, "left", version, start, min(start + 16, n)
            )
            for start in range(0, n, 16)
        ]
        assert chunks == sorted(expected)
        assert len(chunks) > 1
        manifest = json.loads(
            small_chunk_cache.manifest_path(tiny_domain.task.name, "left", version).read_text()
        )
        assert [chunk[:2] for chunk in manifest["chunks"]] == [
            [start, min(start + 16, n)] for start in range(0, n, 16)
        ]
        # Every chunk is content-addressed: its CRC covers exactly its rows.
        from repro.engine import row_range_crc

        assert [chunk[2] for chunk in manifest["chunks"]] == [
            row_range_crc(tiny_domain.task.left, start, min(start + 16, n))
            for start in range(0, n, 16)
        ]
        assert manifest["keys"] == list(left.keys)

    def test_warm_store_skips_encoding_entirely(self, tiny_domain, tiny_representation, small_chunk_cache):
        cold = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        cold_left = cold.table_encodings("left")
        cold.table_encodings("right")

        warm = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        warm_left = warm.table_encodings("left")
        warm.table_encodings("right")
        assert warm.counters.tables_encoded == 0
        assert warm.counters.disk_hits == 2
        assert warm.counters.disk_misses == 0
        # Every chunk of both sides was read exactly once, and nothing else.
        version = tiny_representation.encoding_version
        total_chunks = sum(
            len(_chunks_of(small_chunk_cache, tiny_domain.task.name, side, version))
            for side in ("left", "right")
        )
        assert warm.counters.chunk_loads == total_chunks

        assert warm_left.keys == cold_left.keys
        np.testing.assert_array_equal(warm_left.irs, cold_left.irs)
        np.testing.assert_array_equal(warm_left.mu, cold_left.mu)
        np.testing.assert_array_equal(warm_left.sigma, cold_left.sigma)
        # The reloaded row index must gather identically.
        ids = tiny_domain.task.left.record_ids()[:5]
        np.testing.assert_array_equal(warm_left.rows(ids), cold_left.rows(ids))

    def test_clear_removes_entries(self, tiny_domain, tiny_representation, cache):
        store = _store(tiny_representation, tiny_domain.task, cache)
        store.table_encodings("left")
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_invalid_chunk_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            PersistentEncodingCache(tmp_path, chunk_rows=0)


class TestLazyRangeLoads:
    def test_load_range_reads_only_overlapping_chunks(
        self, tiny_domain, tiny_representation, small_chunk_cache
    ):
        cold = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        full = cold.table_encodings("left")
        version = tiny_representation.encoding_version
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)

        counters = EngineCounters()
        loaded = small_chunk_cache.load_range(
            tiny_domain.task.name, "left", version, fingerprint, 16, 32, counters=counters
        )
        assert loaded is not None
        assert counters.chunk_loads == 1  # rows 16..32 live in exactly one chunk
        assert loaded.keys == full.keys[16:32]
        np.testing.assert_array_equal(loaded.mu, full.mu[16:32])
        # Row indices are local to the range.
        assert [loaded.row_index[key] for key in loaded.keys] == list(range(16))

    def test_load_range_spanning_chunks(self, tiny_domain, tiny_representation, small_chunk_cache):
        cold = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        full = cold.table_encodings("left")
        version = tiny_representation.encoding_version
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)

        counters = EngineCounters()
        loaded = small_chunk_cache.load_range(
            tiny_domain.task.name, "left", version, fingerprint, 10, 20, counters=counters
        )
        assert loaded is not None
        assert counters.chunk_loads == 2  # rows 10..20 straddle the 16-row boundary
        np.testing.assert_array_equal(loaded.irs, full.irs[10:20])

    def test_load_range_clamps_and_rejects(self, tiny_domain, tiny_representation, small_chunk_cache):
        cold = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        full = cold.table_encodings("left")
        version = tiny_representation.encoding_version
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        loaded = small_chunk_cache.load_range(
            tiny_domain.task.name, "left", version, fingerprint, 32, 10_000
        )
        assert loaded is not None and loaded.keys == full.keys[32:]
        with pytest.raises(ValueError):
            small_chunk_cache.load_range(tiny_domain.task.name, "left", version, fingerprint, -1, 4)
        with pytest.raises(ValueError):
            small_chunk_cache.load_range(tiny_domain.task.name, "left", version, fingerprint, 8, 4)

    def test_sharded_store_lazy_shard_load(self, tiny_domain, tiny_representation, small_chunk_cache):
        from repro.engine import ShardedEncodingStore

        cold = ShardedEncodingStore(
            tiny_representation, tiny_domain.task,
            counters=EngineCounters(), persistent=small_chunk_cache, shard_rows=16,
        )
        reference = cold.table_shard("left", 1)
        cold.table_encodings("right")

        warm = ShardedEncodingStore(
            tiny_representation, tiny_domain.task,
            counters=EngineCounters(), persistent=small_chunk_cache, shard_rows=16,
        )
        shard = warm.load_shard("left", 1)
        assert warm.counters.tables_encoded == 0, "lazy shard load must not encode"
        assert warm.counters.chunk_loads == 1, "only the one overlapping chunk is read"
        assert shard.keys == reference.keys
        np.testing.assert_array_equal(shard.mu, reference.mu)
        # Once the table is in memory, load_shard serves the zero-copy view.
        warm.table_encodings("left")
        chunk_loads_before = warm.counters.chunk_loads
        again = warm.load_shard("left", 1)
        assert warm.counters.chunk_loads == chunk_loads_before
        np.testing.assert_array_equal(again.mu, reference.mu)

    def test_mmap_mode_serves_identical_arrays(self, tiny_domain, tiny_representation, tmp_path):
        eager_cache = PersistentEncodingCache(tmp_path / "mm", chunk_rows=16)
        cold = _store(tiny_representation, tiny_domain.task, eager_cache)
        full = cold.table_encodings("left")
        version = tiny_representation.encoding_version
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)

        mapped_cache = PersistentEncodingCache(tmp_path / "mm", chunk_rows=16, mmap_mode="r")
        loaded = mapped_cache.load(tiny_domain.task.name, "left", version, fingerprint)
        assert loaded is not None
        np.testing.assert_array_equal(np.asarray(loaded.irs), full.irs)
        np.testing.assert_array_equal(np.asarray(loaded.mu), full.mu)
        # A single-chunk range load stays a memory map (no eager copy) — a
        # plain ndarray here would mean mmap_mode silently became a no-op.
        ranged = mapped_cache.load_range(tiny_domain.task.name, "left", version, fingerprint, 0, 16)
        assert isinstance(ranged.mu, np.memmap)

    def test_unsafe_mmap_modes_rejected(self, tmp_path):
        for mode in ("r+", "w+", "rw"):
            with pytest.raises(ValueError):
                PersistentEncodingCache(tmp_path, mmap_mode=mode)


class TestInvalidationRules:
    def test_version_bump_is_a_disk_miss(self, tiny_domain, small_vae_config, cache):
        model = EntityRepresentationModel(small_vae_config, ir_method="lsa").fit(tiny_domain.task)
        first = _store(model, tiny_domain.task, cache)
        first.table_encodings("left")
        model.fit(tiny_domain.task, epochs=1)  # bumps encoding_version
        second = _store(model, tiny_domain.task, cache)
        second.table_encodings("left")
        assert second.counters.disk_hits == 0
        assert second.counters.disk_misses == 1
        assert second.counters.tables_encoded == 1
        # Both versions now live side by side in the task directory.
        assert len(cache.entries()) == 2

    def test_fingerprint_mismatch_is_a_miss(self, tiny_domain, tiny_representation, cache):
        store = _store(tiny_representation, tiny_domain.task, cache)
        store.table_encodings("left")
        version = tiny_representation.encoding_version
        good = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        assert cache.load(tiny_domain.task.name, "left", version, good) is not None
        tampered = dict(good, n_records=good["n_records"] + 1)
        assert cache.load(tiny_domain.task.name, "left", version, tampered) is None

    def test_differently_seeded_model_is_a_miss(self, tiny_domain, cache):
        """Same config shape, different training seed: the weights CRC in the
        fingerprint must reject the entry even though both fresh processes
        sit at the same encoding_version."""
        config_a = VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2, seed=1)
        config_b = VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2, seed=2)
        model_a = EntityRepresentationModel(config_a, ir_method="lsa").fit(tiny_domain.task)
        model_b = EntityRepresentationModel(config_b, ir_method="lsa").fit(tiny_domain.task)
        assert model_a.encoding_version == model_b.encoding_version  # same key!

        first = _store(model_a, tiny_domain.task, cache)
        first.table_encodings("left")
        second = _store(model_b, tiny_domain.task, cache)
        second.table_encodings("left")
        assert second.counters.disk_hits == 0
        assert second.counters.tables_encoded == 1  # recomputed, not served stale

    def test_fingerprint_tracks_weights_and_values(self, tiny_domain, tiny_representation):
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        assert {"model", "n_records", "content_crc"} <= set(fingerprint)
        assert {"seed", "weights_crc", "ir_method"} <= set(fingerprint["model"])
        again = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        assert fingerprint == again  # deterministic
        other_table = encoding_fingerprint(tiny_representation, tiny_domain.task.right)
        assert other_table["content_crc"] != fingerprint["content_crc"]
        # The model half is table-independent (it is what chunks embed).
        assert other_table["model"] == fingerprint["model"]

    def test_wrong_side_or_task_is_a_miss(self, tiny_domain, tiny_representation, cache):
        store = _store(tiny_representation, tiny_domain.task, cache)
        store.table_encodings("left")
        version = tiny_representation.encoding_version
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        assert cache.load("other-task", "left", version, fingerprint) is None
        assert cache.load(tiny_domain.task.name, "right", version, fingerprint) is None

    def test_corrupt_chunk_is_a_miss_not_an_error(self, tiny_domain, tiny_representation, small_chunk_cache):
        store = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        before = store.table_encodings("left")
        version = tiny_representation.encoding_version
        chunk = _chunks_of(small_chunk_cache, tiny_domain.task.name, "left", version)[1]
        chunk.write_bytes(b"not an npz archive")
        warm = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        after = warm.table_encodings("left")  # must recompute, not raise
        assert warm.counters.disk_hits == 0
        assert warm.counters.tables_encoded == 1
        np.testing.assert_array_equal(after.mu, before.mu)

    def test_truncated_chunk_is_a_miss_not_an_error(self, tiny_domain, tiny_representation, small_chunk_cache):
        """A killed writer leaves a valid zip header but a truncated body."""
        store = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        before = store.table_encodings("left")
        version = tiny_representation.encoding_version
        chunk = _chunks_of(small_chunk_cache, tiny_domain.task.name, "left", version)[0]
        raw = chunk.read_bytes()
        assert raw[:2] == b"PK"  # still looks like an archive
        chunk.write_bytes(raw[: len(raw) // 2])
        warm = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        after = warm.table_encodings("left")  # must recompute, not raise
        assert warm.counters.disk_hits == 0
        assert warm.counters.tables_encoded == 1
        np.testing.assert_array_equal(after.mu, before.mu)

    def test_stale_manifest_missing_chunk_is_a_miss(self, tiny_domain, tiny_representation, small_chunk_cache):
        """A manifest referencing a deleted chunk must degrade to a miss."""
        store = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        store.table_encodings("left")
        version = tiny_representation.encoding_version
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        _chunks_of(small_chunk_cache, tiny_domain.task.name, "left", version)[1].unlink()
        assert small_chunk_cache.load(tiny_domain.task.name, "left", version, fingerprint) is None
        # Ranges not touching the missing chunk still serve.
        assert (
            small_chunk_cache.load_range(tiny_domain.task.name, "left", version, fingerprint, 0, 8)
            is not None
        )

    def test_foreign_chunk_under_valid_manifest_is_a_miss(
        self, tiny_domain, tiny_representation, small_chunk_cache
    ):
        """A chunk overwritten by a different-fingerprint writer must be
        rejected even though the manifest still validates — the mixed-writer
        race the per-chunk fingerprint exists to catch."""
        store = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        encodings = store.table_encodings("left")
        version = tiny_representation.encoding_version
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        # Simulate the concurrent writer: rewrite one chunk in place with a
        # different fingerprint, leaving the original manifest untouched.
        manifest_path = small_chunk_cache.manifest_path(tiny_domain.task.name, "left", version)
        original_manifest = manifest_path.read_bytes()
        foreign_model = dict(fingerprint["model"], weights_crc=fingerprint["model"]["weights_crc"] + 1)
        foreign = dict(fingerprint, model=foreign_model)
        small_chunk_cache.save(
            tiny_domain.task.name, "left", version, foreign, encodings, table=tiny_domain.task.left
        )
        manifest_path.write_bytes(original_manifest)
        assert small_chunk_cache.load(tiny_domain.task.name, "left", version, fingerprint) is None

    def test_corrupt_manifest_is_a_miss(self, tiny_domain, tiny_representation, small_chunk_cache):
        store = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        store.table_encodings("left")
        version = tiny_representation.encoding_version
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        manifest_path = small_chunk_cache.manifest_path(tiny_domain.task.name, "left", version)
        manifest_path.write_text("{not json")
        assert small_chunk_cache.load(tiny_domain.task.name, "left", version, fingerprint) is None

    def test_non_contiguous_manifest_is_a_miss(self, tiny_domain, tiny_representation, small_chunk_cache):
        """Chunk lists that do not tile [0, n) are stale manifests: miss."""
        store = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        store.table_encodings("left")
        version = tiny_representation.encoding_version
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        manifest_path = small_chunk_cache.manifest_path(tiny_domain.task.name, "left", version)
        manifest = json.loads(manifest_path.read_text())
        manifest["chunks"] = manifest["chunks"][1:]  # drop the first range
        manifest_path.write_text(json.dumps(manifest))
        assert small_chunk_cache.load(tiny_domain.task.name, "left", version, fingerprint) is None

    def test_save_is_atomic_rename(self, tiny_domain, tiny_representation, cache):
        """No temp files survive a save; the entry appears complete."""
        store = _store(tiny_representation, tiny_domain.task, cache)
        store.table_encodings("left")
        version = tiny_representation.encoding_version
        chunk_dir = cache.dir_for(tiny_domain.task.name, "left", version)
        leftovers = [p for p in chunk_dir.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_store_without_cache_never_touches_disk_counters(self, tiny_domain, tiny_representation):
        store = EncodingStore(tiny_representation, tiny_domain.task, counters=EngineCounters())
        store.table_encodings("left")
        assert store.counters.disk_hits == 0
        assert store.counters.disk_misses == 0
        assert store.counters.chunk_loads == 0
        assert store.counters.tables_encoded == 1


def _synthetic_table(n, name="synthetic"):
    """A hand-built table (no model needed) for pure persist-layer tests."""
    return Table(
        name, ("a", "b"),
        [Record(f"r{i}", (f"alpha-{i}", f"beta-{i}")) for i in range(n)],
    )


def _synthetic_encodings(n, seed=0, arity=2, dim=3):
    rng = np.random.default_rng(seed)
    keys = tuple(f"r{i}" for i in range(n))
    return TableEncodings(
        keys=keys,
        irs=rng.normal(size=(n, arity, dim)),
        mu=rng.normal(size=(n, arity, dim)),
        sigma=rng.normal(size=(n, arity, dim)),
        row_index={key: row for row, key in enumerate(keys)},
    )


def _synthetic_fingerprint(table, weights_crc=1234):
    return {
        "model": {
            "ir_method": "lsa", "ir_dim": 3, "hidden_dim": 4, "latent_dim": 3,
            "seed": 1, "weights_crc": weights_crc,
        },
        "n_records": len(table),
        "content_crc": row_range_crc(table, 0, len(table)),
    }


class TestDeltaProbeAndExtend:
    """The content-addressed chunk machinery, exercised without any model."""

    CHUNK = 8

    def _cache(self, tmp_path):
        return PersistentEncodingCache(tmp_path / "delta", chunk_rows=self.CHUNK)

    def _saved(self, tmp_path, n=20):
        cache = self._cache(tmp_path)
        table = _synthetic_table(n)
        encodings = _synthetic_encodings(n)
        fingerprint = _synthetic_fingerprint(table)
        cache.save("t", "right", 1, fingerprint, encodings, table=table)
        return cache, table, encodings, fingerprint

    def test_probe_recognises_appended_table(self, tmp_path):
        cache, table, encodings, _ = self._saved(tmp_path, n=20)
        for i in range(20, 25):
            table.add(Record(f"r{i}", (f"alpha-{i}", f"beta-{i}")))
        grown_fp = _synthetic_fingerprint(table)
        # The full load misses (the table-level fingerprint changed) ...
        assert cache.load("t", "right", 1, grown_fp) is None
        # ... but the probe reports every old chunk valid.
        delta = cache.delta("t", "right", 1, grown_fp, table)
        assert delta is not None
        assert delta.base_rows == 20 and delta.total_rows == 25 and delta.new_rows == 5
        counters = EngineCounters()
        prefix = cache.load_prefix("t", "right", 1, delta, counters=counters)
        assert prefix is not None and len(prefix) == 20
        assert counters.chunk_loads == 3  # 20 rows in 8-row chunks
        np.testing.assert_array_equal(np.asarray(prefix.mu), encodings.mu)

    def test_probe_rejects_foreign_model(self, tmp_path):
        cache, table, _, fingerprint = self._saved(tmp_path, n=20)
        foreign = dict(
            fingerprint,
            model=dict(fingerprint["model"], weights_crc=fingerprint["model"]["weights_crc"] + 1),
        )
        assert cache.delta("t", "right", 1, foreign, table) is None

    def test_probe_classifies_edits_row_precisely(self, tmp_path):
        """An in-place edit dirties exactly the edited row — any position."""
        cache, _, _, _ = self._saved(tmp_path, n=20)
        edited = _synthetic_table(20)
        edited.replace(Record("r10", ("EDITED", "beta-10")))
        delta = cache.delta("t", "right", 1, _synthetic_fingerprint(edited), edited)
        assert delta is not None
        assert delta.base_rows == 20 and delta.new_rows == 0
        assert delta.dirty_ranges == ((10, 11),)
        assert delta.deleted_rows == ()
        # Only the chunk holding row 10 loses validity.
        assert [chunk[:2] for chunk in delta.valid_chunks] == [(0, 8), (16, 20)]
        # An edit in the first chunk is equally recoverable (no prefix rule).
        edited.replace(Record("r0", ("EDITED", "beta-0")))
        again = cache.delta("t", "right", 1, _synthetic_fingerprint(edited), edited)
        assert again is not None and again.dirty_ranges == ((0, 1), (10, 11))
        assert again.encode_positions() == (0, 10)
        positions, stored = again.reused_rows()
        assert 0 not in positions and 10 not in positions and len(positions) == 18
        assert stored == positions  # nothing deleted: stored == current

    def test_probe_classifies_deletions_and_reorders(self, tmp_path):
        cache, _, _, _ = self._saved(tmp_path, n=20)
        shrunk = _synthetic_table(20)
        shrunk.remove("r5")
        shrunk.remove("r13")
        delta = cache.delta("t", "right", 1, _synthetic_fingerprint(shrunk), shrunk)
        assert delta is not None
        assert delta.deleted_rows == (5, 13)
        assert delta.dirty_ranges == () and delta.new_rows == 0
        assert delta.base_rows == 18 == delta.total_rows
        # Chunks containing the deleted stored rows are no longer fully valid
        # (their clean rows are still served through load_reused).
        assert [chunk[:2] for chunk in delta.valid_chunks] == [(16, 20)]
        positions, stored = delta.reused_rows()
        assert len(positions) == 18
        assert 5 not in stored and 13 not in stored
        # A reorder degrades to delete + re-add: a fully reversed table keeps
        # one survivor (the first current row) and rewrites everything else.
        shuffled = Table("t", ("a", "b"), list(reversed(_synthetic_table(20).records())))
        reversed_delta = cache.delta("t", "right", 1, _synthetic_fingerprint(shuffled), shuffled)
        assert reversed_delta is not None
        assert reversed_delta.base_rows == 1
        assert len(reversed_delta.deleted_rows) == 19
        assert reversed_delta.appended_range == (1, 20)

    def test_probe_mixed_edit_delete_append(self, tmp_path):
        cache, _, _, _ = self._saved(tmp_path, n=20)
        table = _synthetic_table(20)
        table.replace(Record("r3", ("EDITED", "beta-3")))
        table.remove("r11")
        for i in range(20, 24):
            table.add(Record(f"r{i}", (f"alpha-{i}", f"beta-{i}")))
        delta = cache.delta("t", "right", 1, _synthetic_fingerprint(table), table)
        assert delta is not None
        assert delta.dirty_ranges == ((3, 4),)
        assert delta.deleted_rows == (11,)
        assert delta.appended_range == (19, 23)
        assert delta.new_rows == 4 and delta.dirty_rows == 1
        assert not delta.is_append_only
        # Encode exactly the edited row plus the appended tail.
        assert delta.encode_positions() == (3, 19, 20, 21, 22)

    def test_extend_appends_chunks_and_serves_exact_loads(self, tmp_path):
        cache, table, encodings, _ = self._saved(tmp_path, n=20)
        for i in range(20, 31):
            table.add(Record(f"r{i}", (f"alpha-{i}", f"beta-{i}")))
        grown_fp = _synthetic_fingerprint(table)
        delta = cache.delta("t", "right", 1, grown_fp, table)
        tail = _synthetic_encodings(31, seed=9)
        tail_view = TableEncodings(
            keys=tuple(f"r{i}" for i in range(20, 31)),
            irs=tail.irs[20:], mu=tail.mu[20:], sigma=tail.sigma[20:],
            row_index={f"r{i}": i - 20 for i in range(20, 31)},
        )
        cache.extend("t", "right", 1, grown_fp, table, delta, tail_view)

        # Old chunk archives were not rewritten; new ones continue from row 20.
        manifest = json.loads(cache.manifest_path("t", "right", 1).read_text())
        assert [chunk[:2] for chunk in manifest["chunks"]] == [
            [0, 8], [8, 16], [16, 20], [20, 28], [28, 31]
        ]
        # The extended entry now serves an exact full load.
        loaded = cache.load("t", "right", 1, grown_fp)
        assert loaded is not None and len(loaded) == 31
        np.testing.assert_array_equal(np.asarray(loaded.mu[:20]), encodings.mu)
        np.testing.assert_array_equal(np.asarray(loaded.mu[20:]), tail_view.mu)
        # A second append extends again, from the new boundary.
        for i in range(31, 33):
            table.add(Record(f"r{i}", (f"alpha-{i}", f"beta-{i}")))
        again = cache.delta("t", "right", 1, _synthetic_fingerprint(table), table)
        assert again is not None and again.base_rows == 31

    def test_patch_writes_superseding_generations_and_tombstones(self, tmp_path):
        """Edits supersede chunks (old generation untouched on disk), deletes
        tombstone manifest rows, appends extend — and the patched entry then
        serves a full load equal to the mutated table's state."""
        cache, table, encodings, _ = self._saved(tmp_path, n=20)
        table.replace(Record("r10", ("EDITED", "beta-10")))
        table.remove("r2")
        for i in range(20, 23):
            table.add(Record(f"r{i}", (f"alpha-{i}", f"beta-{i}")))
        fingerprint = _synthetic_fingerprint(table)
        delta = cache.delta("t", "right", 1, fingerprint, table)
        assert delta is not None and not delta.is_append_only

        # What the store would splice: reused rows + freshly encoded ones.
        fresh = _synthetic_encodings(23, seed=4)
        merged = TableEncodings(
            keys=tuple(table.record_ids()),
            irs=fresh.irs[:19].copy(), mu=fresh.mu[:19].copy(), sigma=fresh.sigma[:19].copy(),
            row_index={},
        )
        positions, stored = delta.reused_rows()
        old = np.asarray(encodings.mu)
        for position, stored_index in zip(positions, stored):
            merged.mu[position] = old[stored_index]
            merged.irs[position] = np.asarray(encodings.irs)[stored_index]
            merged.sigma[position] = np.asarray(encodings.sigma)[stored_index]
        merged = TableEncodings(
            keys=tuple(table.record_ids()),
            irs=np.concatenate([merged.irs, fresh.irs[19:22]]),
            mu=np.concatenate([merged.mu, fresh.mu[19:22]]),
            sigma=np.concatenate([merged.sigma, fresh.sigma[19:22]]),
            row_index={key: row for row, key in enumerate(table.record_ids())},
        )
        _, stats = cache.patch("t", "right", 1, fingerprint, table, delta, merged)
        assert stats["rows_tombstoned"] == 1
        assert stats["chunks_patched"] == 1  # only the chunk holding row 10
        assert stats["chunks_appended"] == 1  # rows 20..23

        manifest = json.loads(cache.manifest_path("t", "right", 1).read_text())
        assert manifest["format"] == 5
        assert manifest["tombstones"] == [2]
        by_range = {(chunk[0], chunk[1]): chunk for chunk in manifest["chunks"]}
        assert by_range[(8, 16)][3] == 1  # superseded generation
        assert by_range[(0, 8)][3] == 0  # deletion alone does not rewrite
        assert (20, 23) in by_range
        # Both generations exist on disk until prune sweeps the stale one.
        assert cache.chunk_path("t", "right", 1, 8, 16, 0).is_file()
        assert cache.chunk_path("t", "right", 1, 8, 16, 1).is_file()

        loaded = cache.load("t", "right", 1, fingerprint)
        assert loaded is not None and len(loaded) == len(table) == 22
        assert loaded.keys == tuple(table.record_ids())
        np.testing.assert_array_equal(np.asarray(loaded.mu), merged.mu)

        # Prune sweeps exactly the superseded generation file.
        removed = cache.prune()
        assert removed["files"] == 1
        assert not cache.chunk_path("t", "right", 1, 8, 16, 0).is_file()
        assert cache.load("t", "right", 1, fingerprint) is not None

    def test_prune_dry_run_reports_without_deleting(self, tmp_path):
        cache, table, encodings, _ = self._saved(tmp_path, n=20)
        stray = cache.chunk_path("t", "right", 1, 99, 120)
        stray.write_bytes(b"leftover of a superseded generation")
        preview = cache.prune(dry_run=True)
        assert preview["files"] == 1 and preview["bytes"] > 0
        assert stray.is_file(), "dry run must not delete"
        assert cache.prune() == preview
        assert not stray.is_file()

    def test_keys_only_entries_are_opaque_to_delta(self, tmp_path):
        """Entries saved without a table (synthetic benchmarks) serve full
        loads but never claim a delta prefix."""
        cache = self._cache(tmp_path)
        table = _synthetic_table(20)
        encodings = _synthetic_encodings(20)
        fingerprint = _synthetic_fingerprint(table)
        cache.save("t", "right", 1, fingerprint, encodings)  # note: no table=
        assert cache.load("t", "right", 1, fingerprint) is not None
        assert cache.delta("t", "right", 1, fingerprint, table) is None


class TestCacheInspection:
    def test_describe_entries_reports_layout(self, tiny_domain, tiny_representation, small_chunk_cache):
        store = _store(tiny_representation, tiny_domain.task, small_chunk_cache)
        store.table_encodings("left")
        store.table_encodings("right")
        rows = small_chunk_cache.describe_entries()
        assert {row["side"] for row in rows} == {"left", "right"}
        for row in rows:
            assert row["task"] == tiny_domain.task.name
            assert row["layout"] == "chunked"
            assert row["rows"] > 0 and row["chunks"] > 1 and row["bytes"] > 0
            assert row["content_crc"] is not None and row["weights_crc"] is not None

    def test_prune_removes_stale_generations(self, tiny_domain, small_vae_config, small_chunk_cache):
        model = EntityRepresentationModel(small_vae_config, ir_method="lsa").fit(tiny_domain.task)
        _store(model, tiny_domain.task, small_chunk_cache).table_encodings("left")
        model.fit(tiny_domain.task, epochs=1)  # bumps encoding_version
        _store(model, tiny_domain.task, small_chunk_cache).table_encodings("left")
        assert len(small_chunk_cache.entries()) == 2
        removed = small_chunk_cache.prune()
        assert removed["entries"] == 1 and removed["files"] > 0 and removed["bytes"] > 0
        survivors = small_chunk_cache.describe_entries()
        assert len(survivors) == 1
        assert survivors[0]["version"] == model.encoding_version
        # Pruning again is a no-op.
        assert small_chunk_cache.prune() == {
            "entries": 0, "files": 0, "bytes": 0, "bytes_by_codec": {},
        }

    def test_prune_sweeps_unreferenced_chunks(self, tmp_path):
        cache = PersistentEncodingCache(tmp_path / "sweep", chunk_rows=8)
        table = _synthetic_table(20)
        cache.save("t", "right", 1, _synthetic_fingerprint(table), _synthetic_encodings(20), table=table)
        stray = cache.chunk_path("t", "right", 1, 99, 120)
        stray.write_bytes(b"leftover of a superseded extension")
        removed = cache.prune()
        assert removed["files"] == 1 and not stray.is_file()
        # The referenced chunks still serve.
        assert cache.load("t", "right", 1, _synthetic_fingerprint(table)) is not None


class TestV3ManifestMigration:
    """Format-3 (pre-mutation) manifests are upgraded to the current format
    on first read."""

    CHUNK = 8

    def _v3_entry(self, tmp_path, n=20):
        """Write a current-format entry, then rewrite its manifest in the v3 shape."""
        cache = PersistentEncodingCache(tmp_path / "v3", chunk_rows=self.CHUNK)
        table = _synthetic_table(n)
        encodings = _synthetic_encodings(n)
        fingerprint = _synthetic_fingerprint(table)
        cache.save("t", "right", 1, fingerprint, encodings, table=table)
        manifest_path = cache.manifest_path("t", "right", 1)
        manifest = json.loads(manifest_path.read_text())
        downgraded = {
            key: value
            for key, value in manifest.items()
            if key not in ("row_crcs", "tombstones")
        }
        downgraded["format"] = 3
        downgraded.pop("codec", None)
        downgraded["chunks"] = [chunk[:3] for chunk in manifest["chunks"]]
        manifest_path.write_text(json.dumps(downgraded))
        return cache, table, encodings, fingerprint

    def test_v3_manifest_migrates_on_first_load(self, tmp_path):
        cache, table, encodings, fingerprint = self._v3_entry(tmp_path)
        loaded = cache.load("t", "right", 1, fingerprint, table=table)
        assert loaded is not None
        manifest = json.loads(cache.manifest_path("t", "right", 1).read_text())
        assert manifest["format"] == 5
        assert manifest["tombstones"] == []
        assert [chunk[3] for chunk in manifest["chunks"]] == [0, 0, 0]
        # With the table in hand, the migration recovers per-row CRCs, so the
        # entry is immediately row-precisely delta-probeable.
        from repro.engine import table_row_crcs

        assert manifest["row_crcs"] == table_row_crcs(table)
        table.replace(Record("r7", ("EDITED", "beta-7")))
        delta = cache.delta("t", "right", 1, _synthetic_fingerprint(table), table)
        assert delta is not None and delta.dirty_ranges == ((7, 8),)

    def test_v3_migration_preserves_arrays_byte_identically(self, tmp_path):
        """Mirror of the flat->chunked byte-identity test: migration rewrites
        only the manifest, so every served array is bit-for-bit unchanged."""
        cache, table, encodings, fingerprint = self._v3_entry(tmp_path)
        chunk_bytes = {
            path.name: path.read_bytes()
            for path in cache.dir_for("t", "right", 1).glob("chunk-*.npz")
        }
        migrated = cache.load("t", "right", 1, fingerprint, table=table)
        reloaded = cache.load("t", "right", 1, fingerprint)
        for served in (migrated, reloaded):
            assert served is not None
            assert served.keys == encodings.keys
            for name in ("irs", "mu", "sigma"):
                original = np.ascontiguousarray(getattr(encodings, name))
                roundtripped = np.ascontiguousarray(np.asarray(getattr(served, name)))
                assert original.dtype == roundtripped.dtype
                assert original.shape == roundtripped.shape
                assert original.tobytes() == roundtripped.tobytes()
        # The chunk archives themselves were not rewritten at all.
        for path in cache.dir_for("t", "right", 1).glob("chunk-*.npz"):
            assert path.read_bytes() == chunk_bytes[path.name]

    def test_v3_probe_without_row_crcs_degrades_to_chunk_granularity(self, tmp_path):
        """A delta probe hitting a not-yet-migrated v3 manifest still works:
        edits dirty their whole chunk (safe over-approximation), appends stay
        row-exact."""
        cache, table, _, _ = self._v3_entry(tmp_path)
        table.replace(Record("r10", ("EDITED", "beta-10")))
        for i in range(20, 23):
            table.add(Record(f"r{i}", (f"alpha-{i}", f"beta-{i}")))
        delta = cache.delta("t", "right", 1, _synthetic_fingerprint(table), table)
        assert delta is not None
        assert delta.dirty_ranges == ((8, 16),)  # chunk-aligned, not row-exact
        assert delta.appended_range == (20, 23)


class TestV4ManifestMigration:
    """Format-4 (pre-codec) manifests are upgraded to format 5 on first
    read; the float chunk archives themselves are never rewritten, so the
    ``raw``-codec migration is byte-identical."""

    CHUNK = 8

    def _v4_entry(self, tmp_path, n=20):
        """Write a current-format entry, then rewrite its manifest in the v4
        shape (everything format 5 has, minus the ``codec`` field)."""
        cache = PersistentEncodingCache(tmp_path / "v4", chunk_rows=self.CHUNK)
        table = _synthetic_table(n)
        encodings = _synthetic_encodings(n)
        fingerprint = _synthetic_fingerprint(table)
        cache.save("t", "right", 1, fingerprint, encodings, table=table)
        manifest_path = cache.manifest_path("t", "right", 1)
        manifest = json.loads(manifest_path.read_text())
        downgraded = dict(manifest, format=4)
        downgraded.pop("codec", None)
        manifest_path.write_text(json.dumps(downgraded))
        return cache, table, encodings, fingerprint

    def test_v4_manifest_migrates_on_first_load(self, tmp_path):
        cache, table, encodings, fingerprint = self._v4_entry(tmp_path)
        loaded = cache.load("t", "right", 1, fingerprint, table=table)
        assert loaded is not None
        manifest = json.loads(cache.manifest_path("t", "right", 1).read_text())
        assert manifest["format"] == 5
        assert manifest["codec"] == {"name": "raw", "params": None}
        # v4 already carried row CRCs and tombstones; migration must not
        # degrade either.
        from repro.engine import table_row_crcs

        assert manifest["row_crcs"] == table_row_crcs(table)
        assert manifest["tombstones"] == []

    def test_v4_migration_preserves_arrays_byte_identically(self, tmp_path):
        """The codec migration rewrites only the manifest: every chunk file
        on disk and every served array is bit-for-bit unchanged."""
        cache, table, encodings, fingerprint = self._v4_entry(tmp_path)
        chunk_bytes = {
            path.name: path.read_bytes()
            for path in cache.dir_for("t", "right", 1).glob("chunk-*.npz")
        }
        migrated = cache.load("t", "right", 1, fingerprint, table=table)
        reloaded = cache.load("t", "right", 1, fingerprint)
        for served in (migrated, reloaded):
            assert served is not None
            assert served.keys == encodings.keys
            for name in ("irs", "mu", "sigma"):
                original = np.ascontiguousarray(getattr(encodings, name))
                roundtripped = np.ascontiguousarray(np.asarray(getattr(served, name)))
                assert original.dtype == roundtripped.dtype
                assert original.shape == roundtripped.shape
                assert original.tobytes() == roundtripped.tobytes()
        for path in cache.dir_for("t", "right", 1).glob("chunk-*.npz"):
            assert path.read_bytes() == chunk_bytes[path.name]

    def test_v4_entry_stays_row_precisely_delta_probeable(self, tmp_path):
        """v4 manifests carry row CRCs, so a delta probe against one (before
        any migrating load) is row-exact — no degradation to chunks."""
        cache, table, _, _ = self._v4_entry(tmp_path)
        table.replace(Record("r7", ("EDITED", "beta-7")))
        for i in range(20, 23):
            table.add(Record(f"r{i}", (f"alpha-{i}", f"beta-{i}")))
        delta = cache.delta("t", "right", 1, _synthetic_fingerprint(table), table)
        assert delta is not None
        assert delta.dirty_ranges == ((7, 8),)  # row-exact, unlike v3
        assert delta.appended_range == (20, 23)

    def test_v4_migration_survives_describe_and_prune(self, tmp_path):
        """Inspection tools treat a not-yet-migrated v4 entry as raw codec."""
        cache, table, _, fingerprint = self._v4_entry(tmp_path)
        rows = cache.describe_entries()
        assert len(rows) == 1 and rows[0]["codec"] == "raw"
        assert rows[0]["decoded_bytes"] is not None
        removed = cache.prune(dry_run=True)
        assert removed["entries"] == 0 and removed["bytes_by_codec"] == {}
        assert cache.load("t", "right", 1, fingerprint, table=table) is not None


class TestFlatLayoutMigration:
    def _flat_entry(self, cache, tiny_domain, tiny_representation):
        """Write a legacy flat archive for the left side and return its key."""
        plain = EncodingStore(tiny_representation, tiny_domain.task, counters=EngineCounters())
        encodings = plain.table_encodings("left")
        version = tiny_representation.encoding_version
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        cache.save_flat(tiny_domain.task.name, "left", version, fingerprint, encodings)
        return encodings, version, fingerprint

    def test_flat_archive_migrates_on_first_load(self, tiny_domain, tiny_representation, small_chunk_cache):
        encodings, version, fingerprint = self._flat_entry(
            small_chunk_cache, tiny_domain, tiny_representation
        )
        flat_path = small_chunk_cache.flat_path_for(tiny_domain.task.name, "left", version)
        assert flat_path.is_file()
        loaded = small_chunk_cache.load(tiny_domain.task.name, "left", version, fingerprint)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.mu, encodings.mu)
        # One-shot migration: the flat archive became a chunked entry.
        assert not flat_path.is_file()
        assert small_chunk_cache.manifest_path(tiny_domain.task.name, "left", version).is_file()
        assert len(_chunks_of(small_chunk_cache, tiny_domain.task.name, "left", version)) > 1
        # Second load is served from chunks (counted as chunk loads).
        counters = EngineCounters()
        again = small_chunk_cache.load(
            tiny_domain.task.name, "left", version, fingerprint, counters=counters
        )
        assert again is not None and counters.chunk_loads > 1
        np.testing.assert_array_equal(again.mu, encodings.mu)

    def test_flat_archive_serves_range_loads_via_migration(
        self, tiny_domain, tiny_representation, small_chunk_cache
    ):
        encodings, version, fingerprint = self._flat_entry(
            small_chunk_cache, tiny_domain, tiny_representation
        )
        loaded = small_chunk_cache.load_range(
            tiny_domain.task.name, "left", version, fingerprint, 16, 32
        )
        assert loaded is not None
        np.testing.assert_array_equal(loaded.mu, encodings.mu[16:32])
        assert not small_chunk_cache.flat_path_for(tiny_domain.task.name, "left", version).is_file()

    def test_migration_preserves_arrays_byte_identically(
        self, tiny_domain, tiny_representation, small_chunk_cache
    ):
        """save_flat -> chunked migration must not perturb a single byte of
        any array: the chunked reload equals the original buffers exactly."""
        encodings, version, fingerprint = self._flat_entry(
            small_chunk_cache, tiny_domain, tiny_representation
        )
        migrated = small_chunk_cache.load(tiny_domain.task.name, "left", version, fingerprint)
        reloaded = small_chunk_cache.load(tiny_domain.task.name, "left", version, fingerprint)
        for served in (migrated, reloaded):
            assert served is not None
            assert served.keys == encodings.keys
            for name in ("irs", "mu", "sigma"):
                original = np.ascontiguousarray(getattr(encodings, name))
                roundtripped = np.ascontiguousarray(np.asarray(getattr(served, name)))
                assert original.dtype == roundtripped.dtype
                assert original.shape == roundtripped.shape
                assert original.tobytes() == roundtripped.tobytes()

    def test_foreign_flat_archive_does_not_migrate(self, tiny_domain, tiny_representation, small_chunk_cache):
        _, version, fingerprint = self._flat_entry(small_chunk_cache, tiny_domain, tiny_representation)
        tampered = dict(fingerprint, n_records=fingerprint["n_records"] + 1)
        assert small_chunk_cache.load(tiny_domain.task.name, "left", version, tampered) is None
        # The mismatching flat archive is left untouched for its real owner.
        assert small_chunk_cache.flat_path_for(tiny_domain.task.name, "left", version).is_file()


class TestCrossProcessWarmth:
    def test_warm_cache_across_processes(self, tiny_domain, tiny_representation, tmp_path):
        """Second *run* served entirely from disk.

        With ``REPRO_CACHE_DIR`` set (as in CI's warm-cache re-run), the
        cache directory outlives the process: the first invocation encodes
        and writes, every later invocation must encode nothing.  Without the
        variable the test degrades to a tmp_path cold-then-warm check.
        Either way, served encodings must equal a from-scratch encode.
        """
        cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", tmp_path / "cross-run"))
        cache = PersistentEncodingCache(cache_dir)
        version = tiny_representation.encoding_version
        pre_existing = all(
            cache.manifest_path(tiny_domain.task.name, side, version).is_file()
            for side in ("left", "right")
        )
        store = _store(tiny_representation, tiny_domain.task, cache)
        served = store.table_encodings("left")
        store.table_encodings("right")
        if pre_existing:
            assert store.counters.tables_encoded == 0, "warm run must not encode any table"
            assert store.counters.disk_hits == 2
            assert store.counters.chunk_loads >= 2
        else:
            assert store.counters.tables_encoded == 2
        # Whatever the source, the encodings must match a fresh computation.
        fresh = tiny_representation.encode_table(tiny_domain.task.left)
        assert served.keys == fresh.keys
        np.testing.assert_allclose(served.mu, fresh.mu, atol=1e-12)
        np.testing.assert_allclose(served.sigma, fresh.sigma, atol=1e-12)
