"""Persistent encoding cache: layout, keying, invalidation, counter surface."""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.config import VAEConfig
from repro.core.representation import EntityRepresentationModel
from repro.engine import EncodingStore, PersistentEncodingCache, encoding_fingerprint
from repro.eval.timing import EngineCounters


@pytest.fixture()
def cache(tmp_path):
    return PersistentEncodingCache(tmp_path / "enc-cache")


def _store(representation, task, cache):
    return EncodingStore(representation, task, counters=EngineCounters(), persistent=cache)


class TestLayoutAndRoundtrip:
    def test_cold_run_encodes_and_writes(self, tiny_domain, tiny_representation, cache):
        store = _store(tiny_representation, tiny_domain.task, cache)
        store.table_encodings("left")
        store.table_encodings("right")
        assert store.counters.tables_encoded == 2
        assert store.counters.disk_misses == 2
        assert store.counters.disk_hits == 0
        version = tiny_representation.encoding_version
        expected = {
            cache.path_for(tiny_domain.task.name, side, version) for side in ("left", "right")
        }
        assert set(cache.entries()) == expected

    def test_documented_directory_layout(self, tiny_domain, tiny_representation, cache):
        """Layout contract: <cache_dir>/<task-name>/<side>-v<version>.npz"""
        version = tiny_representation.encoding_version
        path = cache.path_for(tiny_domain.task.name, "left", version)
        assert path == cache.directory / tiny_domain.task.name / f"left-v{version}.npz"

    def test_warm_store_skips_encoding_entirely(self, tiny_domain, tiny_representation, cache):
        cold = _store(tiny_representation, tiny_domain.task, cache)
        cold_left = cold.table_encodings("left")
        cold.table_encodings("right")

        warm = _store(tiny_representation, tiny_domain.task, cache)
        warm_left = warm.table_encodings("left")
        warm.table_encodings("right")
        assert warm.counters.tables_encoded == 0
        assert warm.counters.disk_hits == 2
        assert warm.counters.disk_misses == 0

        assert warm_left.keys == cold_left.keys
        np.testing.assert_array_equal(warm_left.irs, cold_left.irs)
        np.testing.assert_array_equal(warm_left.mu, cold_left.mu)
        np.testing.assert_array_equal(warm_left.sigma, cold_left.sigma)
        # The reloaded row index must gather identically.
        ids = tiny_domain.task.left.record_ids()[:5]
        np.testing.assert_array_equal(warm_left.rows(ids), cold_left.rows(ids))

    def test_clear_removes_entries(self, tiny_domain, tiny_representation, cache):
        store = _store(tiny_representation, tiny_domain.task, cache)
        store.table_encodings("left")
        assert cache.clear() == 1
        assert cache.entries() == []


class TestInvalidationRules:
    def test_version_bump_is_a_disk_miss(self, tiny_domain, small_vae_config, cache):
        model = EntityRepresentationModel(small_vae_config, ir_method="lsa").fit(tiny_domain.task)
        first = _store(model, tiny_domain.task, cache)
        first.table_encodings("left")
        model.fit(tiny_domain.task, epochs=1)  # bumps encoding_version
        second = _store(model, tiny_domain.task, cache)
        second.table_encodings("left")
        assert second.counters.disk_hits == 0
        assert second.counters.disk_misses == 1
        assert second.counters.tables_encoded == 1
        # Both versions now live side by side in the task directory.
        assert len(cache.entries()) == 2

    def test_fingerprint_mismatch_is_a_miss(self, tiny_domain, tiny_representation, cache):
        store = _store(tiny_representation, tiny_domain.task, cache)
        store.table_encodings("left")
        version = tiny_representation.encoding_version
        good = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        assert cache.load(tiny_domain.task.name, "left", version, good) is not None
        tampered = dict(good, n_records=good["n_records"] + 1)
        assert cache.load(tiny_domain.task.name, "left", version, tampered) is None

    def test_differently_seeded_model_is_a_miss(self, tiny_domain, cache):
        """Same config shape, different training seed: the weights CRC in the
        fingerprint must reject the archive even though both fresh processes
        sit at the same encoding_version."""
        config_a = VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2, seed=1)
        config_b = VAEConfig(ir_dim=16, hidden_dim=24, latent_dim=8, epochs=2, seed=2)
        model_a = EntityRepresentationModel(config_a, ir_method="lsa").fit(tiny_domain.task)
        model_b = EntityRepresentationModel(config_b, ir_method="lsa").fit(tiny_domain.task)
        assert model_a.encoding_version == model_b.encoding_version  # same key!

        first = _store(model_a, tiny_domain.task, cache)
        first.table_encodings("left")
        second = _store(model_b, tiny_domain.task, cache)
        second.table_encodings("left")
        assert second.counters.disk_hits == 0
        assert second.counters.tables_encoded == 1  # recomputed, not served stale

    def test_fingerprint_tracks_weights_and_values(self, tiny_domain, tiny_representation):
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        assert {"seed", "weights_crc", "content_crc"} <= set(fingerprint)
        again = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        assert fingerprint == again  # deterministic
        other_table = encoding_fingerprint(tiny_representation, tiny_domain.task.right)
        assert other_table["content_crc"] != fingerprint["content_crc"]

    def test_wrong_side_or_task_is_a_miss(self, tiny_domain, tiny_representation, cache):
        store = _store(tiny_representation, tiny_domain.task, cache)
        store.table_encodings("left")
        version = tiny_representation.encoding_version
        fingerprint = encoding_fingerprint(tiny_representation, tiny_domain.task.left)
        assert cache.load("other-task", "left", version, fingerprint) is None
        assert cache.load(tiny_domain.task.name, "right", version, fingerprint) is None

    def test_corrupt_archive_is_a_miss_not_an_error(self, tiny_domain, tiny_representation, cache):
        store = _store(tiny_representation, tiny_domain.task, cache)
        before = store.table_encodings("left")
        version = tiny_representation.encoding_version
        path = cache.path_for(tiny_domain.task.name, "left", version)
        path.write_bytes(b"not an npz archive")
        warm = _store(tiny_representation, tiny_domain.task, cache)
        after = warm.table_encodings("left")  # must recompute, not raise
        assert warm.counters.disk_hits == 0
        assert warm.counters.tables_encoded == 1
        np.testing.assert_array_equal(after.mu, before.mu)

    def test_truncated_archive_is_a_miss_not_an_error(self, tiny_domain, tiny_representation, cache):
        """A killed writer leaves a valid zip header but a truncated body."""
        store = _store(tiny_representation, tiny_domain.task, cache)
        before = store.table_encodings("left")
        version = tiny_representation.encoding_version
        path = cache.path_for(tiny_domain.task.name, "left", version)
        raw = path.read_bytes()
        assert raw[:2] == b"PK"  # still looks like an archive
        path.write_bytes(raw[: len(raw) // 2])
        warm = _store(tiny_representation, tiny_domain.task, cache)
        after = warm.table_encodings("left")  # must recompute, not raise
        assert warm.counters.disk_hits == 0
        assert warm.counters.tables_encoded == 1
        np.testing.assert_array_equal(after.mu, before.mu)

    def test_save_is_atomic_rename(self, tiny_domain, tiny_representation, cache):
        """No temp files survive a save; the final path appears complete."""
        store = _store(tiny_representation, tiny_domain.task, cache)
        store.table_encodings("left")
        task_dir = cache.path_for(tiny_domain.task.name, "left", 1).parent
        leftovers = [p for p in task_dir.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_store_without_cache_never_touches_disk_counters(self, tiny_domain, tiny_representation):
        store = EncodingStore(tiny_representation, tiny_domain.task, counters=EngineCounters())
        store.table_encodings("left")
        assert store.counters.disk_hits == 0
        assert store.counters.disk_misses == 0
        assert store.counters.tables_encoded == 1


class TestCrossProcessWarmth:
    def test_warm_cache_across_processes(self, tiny_domain, tiny_representation, tmp_path):
        """Second *run* served entirely from disk.

        With ``REPRO_CACHE_DIR`` set (as in CI's warm-cache re-run), the
        cache directory outlives the process: the first invocation encodes
        and writes, every later invocation must encode nothing.  Without the
        variable the test degrades to a tmp_path cold-then-warm check.
        Either way, served encodings must equal a from-scratch encode.
        """
        cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", tmp_path / "cross-run"))
        cache = PersistentEncodingCache(cache_dir)
        version = tiny_representation.encoding_version
        pre_existing = all(
            cache.path_for(tiny_domain.task.name, side, version).is_file()
            for side in ("left", "right")
        )
        store = _store(tiny_representation, tiny_domain.task, cache)
        served = store.table_encodings("left")
        store.table_encodings("right")
        if pre_existing:
            assert store.counters.tables_encoded == 0, "warm run must not encode any table"
            assert store.counters.disk_hits == 2
        else:
            assert store.counters.tables_encoded == 2
        # Whatever the source, the encodings must match a fresh computation.
        fresh = tiny_representation.encode_table(tiny_domain.task.left)
        assert served.keys == fresh.keys
        np.testing.assert_allclose(served.mu, fresh.mu, atol=1e-12)
        np.testing.assert_allclose(served.sigma, fresh.sigma, atol=1e-12)
